#include "video/video_io.h"

#include <cstring>
#include <memory>
#include <fstream>

#include "util/string_util.h"

namespace vdb {
namespace {

constexpr char kMagic[8] = {'V', 'D', 'B', 'V', 'I', 'D', '0', '1'};
constexpr uint32_t kFlagRle = 1u << 0;
constexpr uint32_t kMaxReasonableDim = 1 << 16;
constexpr uint32_t kMaxReasonableFrames = 1 << 24;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool GetBytes(std::istream& in, void* dst, size_t n) {
  return static_cast<bool>(in.read(static_cast<char*>(dst),
                                   static_cast<std::streamsize>(n)));
}

Result<uint32_t> GetU32(std::istream& in, const char* what) {
  uint8_t b[4];
  if (!GetBytes(in, b, 4)) {
    return Status::Corruption(StrFormat("truncated file reading %s", what));
  }
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

Result<uint64_t> GetU64(std::istream& in, const char* what) {
  VDB_ASSIGN_OR_RETURN(uint32_t lo, GetU32(in, what));
  VDB_ASSIGN_OR_RETURN(uint32_t hi, GetU32(in, what));
  return static_cast<uint64_t>(hi) << 32 | lo;
}

// Serializes a frame's pixels as a raw byte stream (r,g,b per pixel).
std::string FrameBytes(const Frame& frame) {
  std::string raw;
  raw.reserve(frame.pixel_count() * 3);
  for (const PixelRGB& p : frame.pixels()) {
    raw.push_back(static_cast<char>(p.r));
    raw.push_back(static_cast<char>(p.g));
    raw.push_back(static_cast<char>(p.b));
  }
  return raw;
}

// RLE over whole pixels: (run_length:u8, r, g, b) tuples, runs capped at 255.
std::string RleEncode(const Frame& frame) {
  std::string out;
  const auto& pixels = frame.pixels();
  size_t i = 0;
  while (i < pixels.size()) {
    size_t run = 1;
    while (i + run < pixels.size() && run < 255 &&
           pixels[i + run] == pixels[i]) {
      ++run;
    }
    out.push_back(static_cast<char>(run));
    out.push_back(static_cast<char>(pixels[i].r));
    out.push_back(static_cast<char>(pixels[i].g));
    out.push_back(static_cast<char>(pixels[i].b));
    i += run;
  }
  return out;
}

Status RleDecode(const std::string& payload, Frame* frame) {
  auto& pixels = frame->pixels();
  size_t out = 0;
  size_t i = 0;
  while (i + 4 <= payload.size()) {
    size_t run = static_cast<uint8_t>(payload[i]);
    PixelRGB p(static_cast<uint8_t>(payload[i + 1]),
               static_cast<uint8_t>(payload[i + 2]),
               static_cast<uint8_t>(payload[i + 3]));
    if (run == 0 || out + run > pixels.size()) {
      return Status::Corruption("RLE run overflows frame");
    }
    for (size_t k = 0; k < run; ++k) pixels[out++] = p;
    i += 4;
  }
  if (i != payload.size() || out != pixels.size()) {
    return Status::Corruption("RLE payload does not cover frame exactly");
  }
  return Status::Ok();
}

}  // namespace

uint32_t Fnv1a32(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

Status WriteVideoFile(const Video& video, const std::string& path,
                      const VideoWriteOptions& options) {
  if (video.empty()) {
    return Status::InvalidArgument("cannot write empty video: " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }

  std::string header(kMagic, sizeof(kMagic));
  uint32_t flags = options.rle_compress ? kFlagRle : 0;
  PutU32(&header, flags);
  PutU32(&header, static_cast<uint32_t>(video.width()));
  PutU32(&header, static_cast<uint32_t>(video.height()));
  PutU32(&header, static_cast<uint32_t>(video.frame_count()));
  uint64_t fps_bits;
  double fps = video.fps();
  std::memcpy(&fps_bits, &fps, sizeof(fps_bits));
  PutU64(&header, fps_bits);
  PutU32(&header, static_cast<uint32_t>(video.name().size()));
  header += video.name();
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  for (int i = 0; i < video.frame_count(); ++i) {
    // Per frame, pick whichever encoding is smaller: RLE expands noisy
    // content (4 bytes per 1-pixel run), so each record carries its own
    // encoding byte.
    std::string payload;
    uint8_t encoding = 0;  // raw
    if (options.rle_compress) {
      payload = RleEncode(video.frame(i));
      encoding = 1;
    }
    if (!options.rle_compress ||
        payload.size() >= video.frame(i).pixel_count() * 3) {
      payload = FrameBytes(video.frame(i));
      encoding = 0;
    }
    std::string rec;
    rec.push_back(static_cast<char>(encoding));
    PutU32(&rec, static_cast<uint32_t>(payload.size()));
    PutU32(&rec, Fnv1a32(reinterpret_cast<const uint8_t*>(payload.data()),
                         payload.size()));
    out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

VideoFileReader::~VideoFileReader() = default;
VideoFileReader::VideoFileReader(VideoFileReader&&) noexcept = default;
VideoFileReader& VideoFileReader::operator=(VideoFileReader&&) noexcept =
    default;

Result<VideoFileReader> VideoFileReader::Open(const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[8];
  if (!GetBytes(*in, magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic; not a .vdb video file: " + path);
  }
  VDB_ASSIGN_OR_RETURN(uint32_t flags, GetU32(*in, "flags"));
  (void)flags;  // per-frame encoding bytes carry the real decision
  VDB_ASSIGN_OR_RETURN(uint32_t width, GetU32(*in, "width"));
  VDB_ASSIGN_OR_RETURN(uint32_t height, GetU32(*in, "height"));
  VDB_ASSIGN_OR_RETURN(uint32_t frame_count, GetU32(*in, "frame count"));
  VDB_ASSIGN_OR_RETURN(uint64_t fps_bits, GetU64(*in, "fps"));
  VDB_ASSIGN_OR_RETURN(uint32_t name_len, GetU32(*in, "name length"));

  if (width == 0 || height == 0 || width > kMaxReasonableDim ||
      height > kMaxReasonableDim) {
    return Status::Corruption(
        StrFormat("implausible dimensions %ux%u", width, height));
  }
  if (frame_count == 0 || frame_count > kMaxReasonableFrames) {
    return Status::Corruption(
        StrFormat("implausible frame count %u", frame_count));
  }
  if (name_len > 4096) {
    return Status::Corruption(StrFormat("implausible name length %u",
                                        name_len));
  }
  std::string name(name_len, '\0');
  if (name_len > 0 && !GetBytes(*in, name.data(), name_len)) {
    return Status::Corruption("truncated file reading name");
  }

  VideoFileReader reader;
  reader.in_ = std::move(in);
  reader.name_ = std::move(name);
  std::memcpy(&reader.fps_, &fps_bits, sizeof(reader.fps_));
  reader.width_ = static_cast<int>(width);
  reader.height_ = static_cast<int>(height);
  reader.frame_count_ = static_cast<int>(frame_count);
  reader.offsets_.assign(static_cast<size_t>(reader.frame_count_), -1);
  reader.offsets_[0] = reader.in_->tellg();
  return reader;
}

Status VideoFileReader::SeekToFrame(int frame_index) {
  if (frame_index < 0 || frame_index >= frame_count_) {
    return Status::OutOfRange(StrFormat("frame %d of %d", frame_index,
                                        frame_count_));
  }
  // Start from the nearest known record offset at or before the target.
  int start = frame_index;
  while (offsets_[static_cast<size_t>(start)] < 0) {
    --start;  // offset 0 is always known
  }
  in_->clear();
  in_->seekg(offsets_[static_cast<size_t>(start)]);
  frames_read_ = start;

  // Skip whole records (header read, payload seeked over) up to the
  // target, recording offsets on the way.
  while (frames_read_ < frame_index) {
    uint8_t encoding = 0;
    if (!GetBytes(*in_, &encoding, 1)) {
      return Status::Corruption(
          StrFormat("truncated frame %d header", frames_read_));
    }
    VDB_ASSIGN_OR_RETURN(uint32_t payload_len,
                         GetU32(*in_, "payload length"));
    VDB_ASSIGN_OR_RETURN(uint32_t checksum, GetU32(*in_, "checksum"));
    (void)checksum;  // verified when the frame is actually decoded
    in_->seekg(static_cast<std::streamoff>(payload_len), std::ios::cur);
    if (!*in_) {
      return Status::Corruption(
          StrFormat("truncated frame %d payload", frames_read_));
    }
    ++frames_read_;
    offsets_[static_cast<size_t>(frames_read_)] = in_->tellg();
  }
  return Status::Ok();
}

Result<Frame> VideoFileReader::ReadFrameAt(int frame_index) {
  VDB_RETURN_IF_ERROR(SeekToFrame(frame_index));
  return ReadNextFrame();
}

Result<Frame> VideoFileReader::ReadNextFrame() {
  if (AtEnd()) {
    return Status::OutOfRange(
        StrFormat("all %d frames already read", frame_count_));
  }
  int f = frames_read_;
  uint8_t encoding = 0;
  if (!GetBytes(*in_, &encoding, 1)) {
    return Status::Corruption(StrFormat("truncated frame %d header", f));
  }
  if (encoding > 1) {
    return Status::Corruption(
        StrFormat("frame %d has unknown encoding %u", f, encoding));
  }
  VDB_ASSIGN_OR_RETURN(uint32_t payload_len, GetU32(*in_, "payload length"));
  VDB_ASSIGN_OR_RETURN(uint32_t checksum, GetU32(*in_, "checksum"));
  size_t raw_size = static_cast<size_t>(width_) * height_ * 3;
  if (payload_len > raw_size * 2 + 16) {
    return Status::Corruption(StrFormat(
        "frame %d payload length %u implausible", f, payload_len));
  }
  std::string payload(payload_len, '\0');
  if (payload_len > 0 && !GetBytes(*in_, payload.data(), payload_len)) {
    return Status::Corruption(StrFormat("truncated frame %d payload", f));
  }
  uint32_t actual = Fnv1a32(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  if (actual != checksum) {
    return Status::Corruption(
        StrFormat("frame %d checksum mismatch (stored %08x, actual %08x)",
                  f, checksum, actual));
  }

  Frame frame(width_, height_);
  if (encoding == 1) {
    VDB_RETURN_IF_ERROR(RleDecode(payload, &frame));
  } else {
    if (payload.size() != raw_size) {
      return Status::Corruption(
          StrFormat("frame %d raw payload size %zu != %zu", f,
                    payload.size(), raw_size));
    }
    auto& pixels = frame.pixels();
    for (size_t i = 0; i < pixels.size(); ++i) {
      pixels[i] = PixelRGB(static_cast<uint8_t>(payload[3 * i]),
                           static_cast<uint8_t>(payload[3 * i + 1]),
                           static_cast<uint8_t>(payload[3 * i + 2]));
    }
  }
  ++frames_read_;
  if (frames_read_ < frame_count_ &&
      offsets_[static_cast<size_t>(frames_read_)] < 0) {
    offsets_[static_cast<size_t>(frames_read_)] = in_->tellg();
  }
  return frame;
}

Result<Video> ReadVideoFile(const std::string& path) {
  VDB_ASSIGN_OR_RETURN(VideoFileReader reader, VideoFileReader::Open(path));
  Video video(reader.name(), reader.fps());
  while (!reader.AtEnd()) {
    VDB_ASSIGN_OR_RETURN(Frame frame, reader.ReadNextFrame());
    video.AppendFrame(std::move(frame));
  }
  return video;
}

}  // namespace vdb
