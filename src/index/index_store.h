#ifndef VDB_INDEX_INDEX_STORE_H_
#define VDB_INDEX_INDEX_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/frame_index.h"
#include "util/fs.h"
#include "util/result.h"

namespace vdb {
namespace index {

// Frame-index persistence inside a catalog-store directory, generation-
// coupled with the catalog's MANIFEST so RELOAD swaps catalog + index as
// one unit:
//
//   <dir>/fidx-<fnv64>-<size>.fidx   checksummed, content-addressed index
//                                    segment (FrameIndex::Serialize bytes)
//   <dir>/FRAMEINDEX-<generation>    checksummed pointer naming the segment
//                                    that indexes catalog generation <g>
//
// Publish order mirrors the store's own protocol (util/fs WriteFileAtomic:
// temp + fsync + rename + dir sync): the segment lands first, the pointer
// is the commit point. A reader that opens catalog generation g either
// finds FRAMEINDEX-<g> — and then the index provably matches the catalog —
// or falls back to rebuilding in memory; it can never pair generation g
// with an index built from some other generation. Content addressing makes
// republishing an unchanged catalog free: the same serialized index maps
// to the same segment file.

// "FRAMEINDEX-<generation>", zero-padded like MANIFEST names.
std::string FrameIndexPointerName(uint64_t generation);

// True (filling *generation) for names of the FrameIndexPointerName shape.
bool ParseFrameIndexPointerName(const std::string& name, uint64_t* generation);

// True for "fidx-*.fidx" segment names.
bool IsFrameIndexSegmentName(const std::string& name);

// Publishes `frame_index` (which must be frozen) as the index of catalog
// generation `generation`. The segment is skipped when its content-
// addressed file already exists.
Status SaveFrameIndex(const std::string& dir, uint64_t generation,
                      const FrameIndex& frame_index,
                      const FaultHook& hook = nullptr);

// Loads the index published for `generation`. kNotFound when no pointer
// exists for that generation; kCorruption when the pointer or segment fails
// its checksum — the caller decides whether to rebuild.
Result<FrameIndex> OpenFrameIndex(const std::string& dir,
                                  uint64_t generation);

// The file names generation `generation`'s index holds live (pointer +
// segment) — what store::CatalogStore::Compact must not delete. Empty when
// that generation has no loadable index.
std::vector<std::string> FrameIndexFiles(const std::string& dir,
                                         uint64_t generation);

}  // namespace index
}  // namespace vdb

#endif  // VDB_INDEX_INDEX_STORE_H_
