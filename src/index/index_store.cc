#include "index/index_store.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/string_util.h"
#include "video/video_io.h"  // Fnv1a32

namespace vdb {
namespace index {
namespace {

constexpr char kSegmentMagic[8] = {'V', 'D', 'B', 'F', 'I', 'S', 'E', 'G'};
constexpr char kPointerMagic[8] = {'V', 'D', 'B', 'F', 'I', 'P', 'T', 'R'};
constexpr char kPointerPrefix[] = "FRAMEINDEX-";
constexpr size_t kPointerPrefixLen = sizeof(kPointerPrefix) - 1;
constexpr size_t kMaxNameLen = 1u << 16;
constexpr uint64_t kMaxIndexPayload = 1ull << 33;

uint64_t Fnv1a64(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint32_t Checksum(std::string_view payload) {
  return Fnv1a32(reinterpret_cast<const uint8_t*>(payload.data()),
                 payload.size());
}

// The same magic + u32 checksum + payload framing as the catalog store's
// segments and manifests.
std::string WrapChecksummed(const char magic[8], std::string_view payload) {
  std::string out;
  out.reserve(8 + 4 + payload.size());
  out.append(magic, 8);
  BinaryWriter header;
  header.PutU32(Checksum(payload));
  out += header.buffer();
  out.append(payload);
  return out;
}

Result<std::string_view> UnwrapChecksummed(const char magic[8],
                                           std::string_view file,
                                           const char* what) {
  if (file.size() < 12 || std::memcmp(file.data(), magic, 8) != 0) {
    return Status::Corruption(StrFormat("bad %s magic", what));
  }
  BinaryReader header(file.substr(8, 4));
  VDB_ASSIGN_OR_RETURN(uint32_t stored, header.GetU32("checksum"));
  std::string_view payload = file.substr(12);
  if (Checksum(payload) != stored) {
    return Status::Corruption(StrFormat("%s checksum mismatch", what));
  }
  return payload;
}

std::string SegmentNameFor(std::string_view payload) {
  return StrFormat(
      "fidx-%016llx-%llu.fidx",
      static_cast<unsigned long long>(
          Fnv1a64(reinterpret_cast<const uint8_t*>(payload.data()),
                  payload.size())),
      static_cast<unsigned long long>(payload.size()));
}

// What FRAMEINDEX-<g> points at.
struct PointerRecord {
  uint64_t generation = 0;
  std::string segment_file;
  uint64_t payload_size = 0;
  uint32_t payload_checksum = 0;
};

Result<PointerRecord> ReadPointer(const std::string& dir,
                                  uint64_t generation) {
  const std::string path = dir + "/" + FrameIndexPointerName(generation);
  if (!FileExists(path)) {
    return Status::NotFound("no frame index for generation " +
                            std::to_string(generation));
  }
  VDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  VDB_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapChecksummed(kPointerMagic, contents, "frame-index pointer"));
  BinaryReader r(payload);
  PointerRecord record;
  VDB_ASSIGN_OR_RETURN(record.generation, r.GetU64("pointer generation"));
  VDB_ASSIGN_OR_RETURN(record.segment_file,
                       r.GetString("pointer segment file", kMaxNameLen));
  VDB_ASSIGN_OR_RETURN(record.payload_size, r.GetU64("pointer payload size"));
  VDB_ASSIGN_OR_RETURN(record.payload_checksum,
                       r.GetU32("pointer payload checksum"));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after frame-index pointer");
  }
  if (record.generation != generation ||
      record.payload_size > kMaxIndexPayload ||
      !IsFrameIndexSegmentName(record.segment_file) ||
      record.segment_file.find('/') != std::string::npos) {
    return Status::Corruption(
        StrFormat("frame-index pointer for generation %llu is implausible",
                  static_cast<unsigned long long>(generation)));
  }
  return record;
}

}  // namespace

std::string FrameIndexPointerName(uint64_t generation) {
  return StrFormat("FRAMEINDEX-%06llu",
                   static_cast<unsigned long long>(generation));
}

bool ParseFrameIndexPointerName(const std::string& name,
                                uint64_t* generation) {
  if (!StartsWith(name, kPointerPrefix) || name.size() == kPointerPrefixLen) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPointerPrefixLen; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

bool IsFrameIndexSegmentName(const std::string& name) {
  return StartsWith(name, "fidx-") && EndsWith(name, ".fidx");
}

Status SaveFrameIndex(const std::string& dir, uint64_t generation,
                      const FrameIndex& frame_index, const FaultHook& hook) {
  const std::string payload = frame_index.Serialize();
  const std::string segment = SegmentNameFor(payload);
  const std::string segment_path = dir + "/" + segment;
  if (!FileExists(segment_path)) {
    VDB_RETURN_IF_ERROR(WriteFileAtomic(
        segment_path, WrapChecksummed(kSegmentMagic, payload), hook,
        "frame-index segment " + segment));
  }
  BinaryWriter w;
  w.PutU64(generation);
  w.PutString(segment);
  w.PutU64(payload.size());
  w.PutU32(Checksum(payload));
  // The pointer rename is the commit point: the segment above is already
  // durable, so a crash leaves at worst an orphan segment for Compact.
  return WriteFileAtomic(dir + "/" + FrameIndexPointerName(generation),
                         WrapChecksummed(kPointerMagic, w.TakeBuffer()), hook,
                         "frame-index pointer");
}

Result<FrameIndex> OpenFrameIndex(const std::string& dir,
                                  uint64_t generation) {
  VDB_ASSIGN_OR_RETURN(PointerRecord record, ReadPointer(dir, generation));
  VDB_ASSIGN_OR_RETURN(std::string contents,
                       ReadFileToString(dir + "/" + record.segment_file));
  VDB_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapChecksummed(kSegmentMagic, contents, "frame-index segment"));
  if (payload.size() != record.payload_size ||
      Checksum(payload) != record.payload_checksum) {
    return Status::Corruption(
        StrFormat("frame-index segment %s does not match its pointer",
                  record.segment_file.c_str()));
  }
  return FrameIndex::Deserialize(payload);
}

std::vector<std::string> FrameIndexFiles(const std::string& dir,
                                         uint64_t generation) {
  Result<PointerRecord> record = ReadPointer(dir, generation);
  if (!record.ok()) {
    return {};
  }
  return {FrameIndexPointerName(generation), record->segment_file};
}

}  // namespace index
}  // namespace vdb
