#ifndef VDB_INDEX_SKETCH_H_
#define VDB_INDEX_SKETCH_H_

#include <cstdint>
#include <vector>

#include "util/binary_io.h"
#include "util/result.h"

namespace vdb {
namespace index {

// One shot's sketch: its sorted, deduplicated token set. This is the unit
// the inverted list is built from, and what the bench's linear baseline
// scans.
struct ShotSketch {
  int32_t video_id = -1;
  int32_t shot_index = -1;
  std::vector<uint64_t> tokens;  // sorted, unique
};

// A classic Bloom filter over 64-bit tokens (the Bloom tier of the frame
// index, after Araujo et al.'s query-by-image sketches): k probe positions
// per key via double hashing, m bits sized from bits_per_key at
// construction. Deterministic — no seeding, so the same token set always
// produces the same bit vector.
class BloomFilter {
 public:
  BloomFilter() = default;

  // Sizes the filter for `expected_keys` insertions at `bits_per_key` bits
  // each (k = round(bits_per_key * ln 2) probes, clamped to >= 1).
  BloomFilter(uint64_t expected_keys, double bits_per_key);

  void Add(uint64_t token);

  // False on definite absence; true on presence *or* a false positive.
  bool MayContain(uint64_t token) const;

  uint64_t bit_count() const { return bit_count_; }
  uint32_t hash_count() const { return hash_count_; }
  uint64_t added() const { return added_; }

  // The textbook bound (1 - e^(-kn/m))^k for the current fill; the property
  // test holds the measured rate within 2x of this.
  double AnalyticFpRate() const;

  // Fraction of bits set (diagnostics).
  double FillFactor() const;

  // Memory footprint of the bit vector in bytes.
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  void Serialize(BinaryWriter* writer) const;
  static Result<BloomFilter> Deserialize(BinaryReader* reader);

 private:
  uint64_t bit_count_ = 0;
  uint32_t hash_count_ = 0;
  uint64_t added_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace index
}  // namespace vdb

#endif  // VDB_INDEX_SKETCH_H_
