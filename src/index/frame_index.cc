#include "index/frame_index.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vdb {
namespace index {
namespace {

// Deserialization caps, applied before any allocation.
constexpr uint64_t kMaxPostings = 1ull << 31;
constexpr uint32_t kMaxVideosCap = 1u << 24;

// (video, shot) packed for the per-query accumulation map.
inline uint64_t ShotKey(int32_t video_id, int32_t shot_index) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(video_id)) << 32) |
         static_cast<uint32_t>(shot_index);
}

void SortHits(std::vector<FrameHit>* hits) {
  std::sort(hits->begin(), hits->end(),
            [](const FrameHit& a, const FrameHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.video_id != b.video_id) return a.video_id < b.video_id;
              return a.shot_index < b.shot_index;
            });
}

}  // namespace

FrameIndex::FrameIndex(FrameIndexOptions options)
    : options_(std::move(options)) {}

void FrameIndex::AddVideo(int video_id, const VideoSignatures& signatures,
                          const std::vector<Shot>& shots) {
  VDB_CHECK(!frozen_) << "AddVideo on a frozen FrameIndex";
  std::vector<uint64_t> video_tokens;
  for (size_t shot = 0; shot < shots.size(); ++shot) {
    std::vector<uint64_t> tokens =
        ShotTokenSet(signatures, shots[shot], options_.tokenizer);
    for (uint64_t token : tokens) {
      postings_.push_back(Posting{token, static_cast<int32_t>(video_id),
                                  static_cast<int32_t>(shot)});
    }
    if (options_.build_bloom) {
      video_tokens.insert(video_tokens.end(), tokens.begin(), tokens.end());
    }
    ++shot_count_;
  }
  if (options_.build_bloom) {
    std::sort(video_tokens.begin(), video_tokens.end());
    video_tokens.erase(std::unique(video_tokens.begin(), video_tokens.end()),
                       video_tokens.end());
    VideoBloom bloom;
    bloom.video_id = static_cast<int32_t>(video_id);
    bloom.filter =
        BloomFilter(video_tokens.size(), options_.bloom_bits_per_key);
    for (uint64_t token : video_tokens) {
      bloom.filter.Add(token);
    }
    blooms_.push_back(std::move(bloom));
  }
  ++blooms_built_;
}

void FrameIndex::Freeze() {
  if (frozen_) {
    return;
  }
  std::sort(postings_.begin(), postings_.end());
  postings_.erase(std::unique(postings_.begin(), postings_.end()),
                  postings_.end());
  postings_.shrink_to_fit();
  frozen_ = true;
}

FrameIndex FrameIndex::Build(const VideoDatabase& db,
                             FrameIndexOptions options) {
  FrameIndex index(std::move(options));
  int count = db.video_count();
  for (int id = 0; id < count; ++id) {
    const CatalogEntry* entry = db.GetEntry(id).value();
    index.AddVideo(id, entry->signatures, entry->shots);
  }
  index.Freeze();
  return index;
}

std::vector<FrameHit> FrameIndex::Query(
    const std::vector<uint64_t>& query_tokens, int top_k,
    FrameQueryStats* stats) const {
  VDB_CHECK(frozen_) << "Query on an unfrozen FrameIndex";
  FrameQueryStats local;
  local.query_tokens = query_tokens.size();
  std::vector<FrameHit> hits;
  if (!query_tokens.empty()) {
    std::unordered_map<uint64_t, uint32_t> matched;
    for (uint64_t token : query_tokens) {
      auto range = std::equal_range(
          postings_.begin(), postings_.end(),
          Posting{token, INT32_MIN, INT32_MIN},
          [](const Posting& a, const Posting& b) { return a.token < b.token; });
      for (auto it = range.first; it != range.second; ++it) {
        ++local.candidates;
        ++matched[ShotKey(it->video_id, it->shot_index)];
      }
    }
    local.probed = matched.size();
    hits.reserve(matched.size());
    const double denom = static_cast<double>(query_tokens.size());
    for (const auto& [key, count] : matched) {
      FrameHit hit;
      hit.video_id = static_cast<int32_t>(key >> 32);
      hit.shot_index = static_cast<int32_t>(key & 0xffffffffu);
      hit.score = static_cast<double>(count) / denom;
      hits.push_back(hit);
    }
    SortHits(&hits);
    if (top_k >= 0 && hits.size() > static_cast<size_t>(top_k)) {
      hits.resize(static_cast<size_t>(top_k));
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return hits;
}

std::vector<FrameHit> FrameIndex::QuerySignature(const Signature& signature,
                                                 int top_k,
                                                 FrameQueryStats* stats) const {
  return Query(SignatureTokenSet(signature, options_.tokenizer), top_k,
               stats);
}

std::vector<FrameHit> FrameIndex::QueryBloom(
    const std::vector<uint64_t>& query_tokens, int top_k,
    FrameQueryStats* stats) const {
  VDB_CHECK(frozen_) << "QueryBloom on an unfrozen FrameIndex";
  FrameQueryStats local;
  local.query_tokens = query_tokens.size();
  std::vector<FrameHit> hits;
  if (!query_tokens.empty()) {
    const double denom = static_cast<double>(query_tokens.size());
    for (const VideoBloom& bloom : blooms_) {
      ++local.probed;
      uint32_t matched = 0;
      for (uint64_t token : query_tokens) {
        if (bloom.filter.MayContain(token)) {
          ++matched;
        }
      }
      if (matched == 0) {
        continue;
      }
      local.candidates += matched;
      FrameHit hit;
      hit.video_id = bloom.video_id;
      hit.shot_index = -1;  // video-level tier
      hit.score = static_cast<double>(matched) / denom;
      hits.push_back(hit);
    }
    SortHits(&hits);
    if (top_k >= 0 && hits.size() > static_cast<size_t>(top_k)) {
      hits.resize(static_cast<size_t>(top_k));
    }
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return hits;
}

size_t FrameIndex::bloom_bytes() const {
  size_t total = 0;
  for (const VideoBloom& bloom : blooms_) {
    total += bloom.filter.ByteSize();
  }
  return total;
}

std::string FrameIndex::Serialize() const {
  VDB_CHECK(frozen_) << "Serialize on an unfrozen FrameIndex";
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(options_.tokenizer.gram));
  w.PutU32(static_cast<uint32_t>(options_.tokenizer.quant_shift));
  w.PutU32(static_cast<uint32_t>(options_.tokenizer.frame_stride));
  w.PutU8(options_.build_bloom ? 1 : 0);
  w.PutDouble(options_.bloom_bits_per_key);
  w.PutU64(blooms_built_);
  w.PutI32(shot_count_);
  w.PutU64(postings_.size());
  for (const Posting& p : postings_) {
    w.PutU64(p.token);
    w.PutI32(p.video_id);
    w.PutI32(p.shot_index);
  }
  w.PutU32(static_cast<uint32_t>(blooms_.size()));
  for (const VideoBloom& bloom : blooms_) {
    w.PutI32(bloom.video_id);
    bloom.filter.Serialize(&w);
  }
  return w.TakeBuffer();
}

Result<FrameIndex> FrameIndex::Deserialize(std::string_view payload) {
  BinaryReader r(payload);
  FrameIndexOptions options;
  VDB_ASSIGN_OR_RETURN(uint32_t gram, r.GetU32("tokenizer gram"));
  VDB_ASSIGN_OR_RETURN(uint32_t shift, r.GetU32("tokenizer shift"));
  VDB_ASSIGN_OR_RETURN(uint32_t stride, r.GetU32("tokenizer stride"));
  if (gram < 1 || gram > 1024 || shift > 7 || stride < 1 ||
      stride > (1u << 20)) {
    return Status::Corruption("implausible tokenizer options");
  }
  options.tokenizer.gram = static_cast<int>(gram);
  options.tokenizer.quant_shift = static_cast<int>(shift);
  options.tokenizer.frame_stride = static_cast<int>(stride);
  VDB_ASSIGN_OR_RETURN(uint8_t build_bloom, r.GetU8("bloom flag"));
  options.build_bloom = build_bloom != 0;
  VDB_ASSIGN_OR_RETURN(options.bloom_bits_per_key,
                       r.GetDouble("bloom bits per key"));
  FrameIndex index(options);
  VDB_ASSIGN_OR_RETURN(index.blooms_built_, r.GetU64("video count"));
  VDB_ASSIGN_OR_RETURN(index.shot_count_, r.GetI32("shot count"));
  if (index.blooms_built_ > kMaxVideosCap || index.shot_count_ < 0) {
    return Status::Corruption("implausible frame-index counts");
  }
  VDB_ASSIGN_OR_RETURN(uint64_t posting_count, r.GetU64("posting count"));
  if (posting_count > kMaxPostings ||
      posting_count * 16 > r.remaining()) {
    return Status::Corruption(
        StrFormat("implausible posting count %llu",
                  static_cast<unsigned long long>(posting_count)));
  }
  index.postings_.resize(static_cast<size_t>(posting_count));
  const Posting* prev = nullptr;
  for (Posting& p : index.postings_) {
    VDB_ASSIGN_OR_RETURN(p.token, r.GetU64("posting token"));
    VDB_ASSIGN_OR_RETURN(p.video_id, r.GetI32("posting video"));
    VDB_ASSIGN_OR_RETURN(p.shot_index, r.GetI32("posting shot"));
    if (prev != nullptr && !(*prev < p)) {
      return Status::Corruption("frame-index postings out of order");
    }
    prev = &p;
  }
  VDB_ASSIGN_OR_RETURN(uint32_t bloom_count, r.GetU32("bloom count"));
  if (bloom_count > kMaxVideosCap) {
    return Status::Corruption("implausible bloom count");
  }
  index.blooms_.resize(bloom_count);
  for (VideoBloom& bloom : index.blooms_) {
    VDB_ASSIGN_OR_RETURN(bloom.video_id, r.GetI32("bloom video id"));
    VDB_ASSIGN_OR_RETURN(bloom.filter, BloomFilter::Deserialize(&r));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after frame index");
  }
  index.frozen_ = true;
  return index;
}

}  // namespace index
}  // namespace vdb
