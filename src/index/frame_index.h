#ifndef VDB_INDEX_FRAME_INDEX_H_
#define VDB_INDEX_FRAME_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/video_database.h"
#include "index/sketch.h"
#include "index/token.h"
#include "util/result.h"

namespace vdb {
namespace index {

// The query-by-frame index: given one frame's signature, find every shot
// whose sketch shares its tokens — the sub-linear complement to the linear
// banded scan of core/variance_index.h (ROADMAP's million-clip workload,
// after Araujo et al.'s Bloom-sketch video retrieval).
//
// Two tiers over the same token stream:
//  * Inverted list (exact): a frozen, sorted flat array of
//    (token, video, shot) postings; a query binary-searches each of its
//    tokens and ranks candidates by the fraction of query tokens they
//    match. Lookup cost is O(Q log P + hits) — independent of catalog
//    size except through the log.
//  * Bloom tier (memory-bounded): one Bloom filter per video over the
//    union of its shots' tokens. A query tests its tokens against every
//    filter — still linear in videos, but at ~10 bits per token it holds
//    catalogs whose posting lists would not fit, and reports a measured
//    false-positive rate the property tests bound against the analytic one.
//
// Build is two-phase (AddVideo... then Freeze) so ingest can stream; a
// frozen index is immutable and safe to share across threads.
struct FrameIndexOptions {
  TokenizerOptions tokenizer;
  // Build the per-video Bloom tier alongside the inverted list.
  bool build_bloom = true;
  double bloom_bits_per_key = 10.0;
};

// One ranked answer. score = matched query tokens / total query tokens, in
// (0, 1]. Bloom-tier hits are video-level: shot_index is -1.
struct FrameHit {
  int32_t video_id = -1;
  int32_t shot_index = -1;
  double score = 0.0;
};

struct FrameQueryStats {
  uint64_t query_tokens = 0;  // distinct tokens in the query signature
  uint64_t candidates = 0;    // postings scanned (bloom: filter hits)
  uint64_t probed = 0;        // distinct shots touched (bloom: filters)
};

class FrameIndex {
 public:
  explicit FrameIndex(FrameIndexOptions options = FrameIndexOptions());

  FrameIndex(FrameIndex&&) noexcept = default;
  FrameIndex& operator=(FrameIndex&&) noexcept = default;
  FrameIndex(const FrameIndex&) = delete;
  FrameIndex& operator=(const FrameIndex&) = delete;

  // Sketches every shot of one video and queues its postings. Videos must
  // be added before Freeze; ids may arrive in any order but must be unique.
  void AddVideo(int video_id, const VideoSignatures& signatures,
                const std::vector<Shot>& shots);

  // Sorts and deduplicates the posting array; after this the index is
  // immutable and queryable. Idempotent.
  void Freeze();

  bool frozen() const { return frozen_; }

  // Builds a frozen index over every video of `db`.
  static FrameIndex Build(const VideoDatabase& db,
                          FrameIndexOptions options = FrameIndexOptions());

  // Exact tier: ranked shots sharing tokens with `query_tokens` (a sorted
  // unique set, e.g. from SignatureTokenSet). Results are ordered by
  // (score desc, video_id asc, shot_index asc) and truncated to top_k —
  // a total order, so a scatter-gathered merge reproduces it byte for byte.
  std::vector<FrameHit> Query(const std::vector<uint64_t>& query_tokens,
                              int top_k,
                              FrameQueryStats* stats = nullptr) const;

  // Query() on a raw signature (tokenized with the index's own options).
  std::vector<FrameHit> QuerySignature(const Signature& signature, int top_k,
                                       FrameQueryStats* stats = nullptr) const;

  // Bloom tier: ranked *videos* whose filter may contain query tokens.
  std::vector<FrameHit> QueryBloom(const std::vector<uint64_t>& query_tokens,
                                   int top_k,
                                   FrameQueryStats* stats = nullptr) const;

  int video_count() const { return static_cast<int>(blooms_built_); }
  int shot_count() const { return shot_count_; }
  uint64_t posting_count() const { return postings_.size(); }
  size_t bloom_bytes() const;
  const FrameIndexOptions& options() const { return options_; }

  // Serialization of a frozen index (payload only; index_store.h wraps it
  // in the checksummed, content-addressed segment framing). Deterministic:
  // the same catalog serializes to the same bytes.
  std::string Serialize() const;
  static Result<FrameIndex> Deserialize(std::string_view payload);

 private:
  struct Posting {
    uint64_t token = 0;
    int32_t video_id = -1;
    int32_t shot_index = -1;

    friend bool operator<(const Posting& a, const Posting& b) {
      if (a.token != b.token) return a.token < b.token;
      if (a.video_id != b.video_id) return a.video_id < b.video_id;
      return a.shot_index < b.shot_index;
    }
    friend bool operator==(const Posting& a, const Posting& b) {
      return a.token == b.token && a.video_id == b.video_id &&
             a.shot_index == b.shot_index;
    }
  };

  struct VideoBloom {
    int32_t video_id = -1;
    BloomFilter filter;
  };

  FrameIndexOptions options_;
  std::vector<Posting> postings_;   // frozen: sorted, unique
  std::vector<VideoBloom> blooms_;  // in AddVideo order
  uint64_t blooms_built_ = 0;       // videos added (even when bloom is off)
  int shot_count_ = 0;
  bool frozen_ = false;
};

}  // namespace index
}  // namespace vdb

#endif  // VDB_INDEX_FRAME_INDEX_H_
