#include "index/token.h"

#include <algorithm>

#include "util/logging.h"

namespace vdb {
namespace index {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t FnvStep(uint64_t hash, uint8_t byte) {
  hash ^= byte;
  hash *= kFnvPrime;
  return hash;
}

}  // namespace

void AppendSignatureTokens(const Signature& signature,
                           const TokenizerOptions& options,
                           std::vector<uint64_t>* out) {
  VDB_CHECK(options.gram >= 1 && options.quant_shift >= 0 &&
            options.quant_shift < 8)
      << "bad tokenizer options";
  const int l = static_cast<int>(signature.size());
  const int gram = options.gram;
  const int shift = options.quant_shift;
  if (l < gram) {
    return;  // too short for a single window
  }
  for (int i = 0; i + gram <= l; ++i) {
    uint64_t hash = kFnvOffset;
    for (int j = 0; j < gram; ++j) {
      const PixelRGB& p = signature[static_cast<size_t>(i + j)];
      hash = FnvStep(hash, static_cast<uint8_t>(p.r >> shift));
      hash = FnvStep(hash, static_cast<uint8_t>(p.g >> shift));
      hash = FnvStep(hash, static_cast<uint8_t>(p.b >> shift));
    }
    out->push_back(hash);
  }
}

std::vector<uint64_t> SignatureTokenSet(const Signature& signature,
                                        const TokenizerOptions& options) {
  std::vector<uint64_t> tokens;
  tokens.reserve(signature.size());
  AppendSignatureTokens(signature, options, &tokens);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

std::vector<uint64_t> ShotTokenSet(const VideoSignatures& signatures,
                                   const Shot& shot,
                                   const TokenizerOptions& options) {
  std::vector<uint64_t> tokens;
  const int frame_count = signatures.frame_count();
  const int first = std::max(0, shot.start_frame);
  const int last = std::min(frame_count - 1, shot.end_frame);
  const int stride = std::max(1, options.frame_stride);
  for (int frame = first; frame <= last; frame += stride) {
    AppendSignatureTokens(signatures.frames[static_cast<size_t>(frame)]
                              .signature_ba,
                          options, &tokens);
  }
  // The last frame anchors the sketch even when the stride skips it.
  if (last >= first && (last - first) % stride != 0) {
    AppendSignatureTokens(signatures.frames[static_cast<size_t>(last)]
                              .signature_ba,
                          options, &tokens);
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace index
}  // namespace vdb
