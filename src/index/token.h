#ifndef VDB_INDEX_TOKEN_H_
#define VDB_INDEX_TOKEN_H_

#include <cstdint>
#include <vector>

#include "core/extractor.h"
#include "core/pyramid.h"
#include "core/shot.h"

namespace vdb {
namespace index {

// Quantized k-gram tokens over frame signatures (the Figure-3 TBA line the
// fixed-point kernels in core/kernels.h emit). A signature of L pixels is
// quantized channel-wise — each byte drops its low `quant_shift` bits, so a
// 256-level channel falls into 2^(8-quant_shift) buckets — and every run of
// `gram` consecutive quantized pixels is hashed (FNV-1a64) into one token.
// The scheme is deterministic byte-for-byte: identical kernel outputs give
// identical tokens on every platform (token_test pins the values), and
// tokenizing allocates nothing beyond the caller's output vector.
struct TokenizerOptions {
  // k-gram window length in signature pixels. A window covers 3*gram
  // quantized channel bytes.
  int gram = 4;
  // Per-channel quantization: channel >> quant_shift. 5 leaves 8 buckets of
  // width 32 — wide enough that sensor-grade noise rarely crosses an edge.
  int quant_shift = 5;
  // When sketching a shot, every frame_stride-th frame is tokenized (the
  // first and last frames always are), so a sketch survives drift within
  // the shot without tokenizing every frame.
  int frame_stride = 4;

  friend bool operator==(const TokenizerOptions& a, const TokenizerOptions& b) {
    return a.gram == b.gram && a.quant_shift == b.quant_shift &&
           a.frame_stride == b.frame_stride;
  }
};

// Tokens of one frame signature, appended to `out` in window order (one per
// window, (L - gram + 1) of them; none when the signature is shorter than a
// window). Duplicates are kept — callers dedup where set semantics matter.
void AppendSignatureTokens(const Signature& signature,
                           const TokenizerOptions& options,
                           std::vector<uint64_t>* out);

// Convenience wrapper returning the sorted, deduplicated token set of one
// signature — the form queries use.
std::vector<uint64_t> SignatureTokenSet(const Signature& signature,
                                        const TokenizerOptions& options);

// The sorted, deduplicated token set of one shot: the union of the token
// sets of its sampled frames (first, last, and every frame_stride-th frame
// in between).
std::vector<uint64_t> ShotTokenSet(const VideoSignatures& signatures,
                                   const Shot& shot,
                                   const TokenizerOptions& options);

}  // namespace index
}  // namespace vdb

#endif  // VDB_INDEX_TOKEN_H_
