#include "index/sketch.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace vdb {
namespace index {
namespace {

// Cap applied before allocating a deserialized bit vector; a frame-index
// segment holding a bigger filter than this is corrupt, not big.
constexpr uint64_t kMaxBits = 1ull << 33;  // 1 GiB of filter

// splitmix64 finalizer: spreads a raw token into the two double-hashing
// streams. Tokens are already FNV hashes, but mixing again keeps the probe
// sequence independent of FNV's avalanche behaviour.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key) {
  VDB_CHECK(bits_per_key > 0) << "bits_per_key must be positive";
  if (expected_keys == 0) {
    expected_keys = 1;
  }
  uint64_t bits = static_cast<uint64_t>(
      std::ceil(static_cast<double>(expected_keys) * bits_per_key));
  if (bits < 64) {
    bits = 64;
  }
  bit_count_ = (bits + 63) / 64 * 64;
  words_.assign(bit_count_ / 64, 0);
  int k = static_cast<int>(std::lround(bits_per_key * 0.6931471805599453));
  hash_count_ = static_cast<uint32_t>(k < 1 ? 1 : (k > 30 ? 30 : k));
}

void BloomFilter::Add(uint64_t token) {
  VDB_CHECK(bit_count_ > 0) << "Add on a default-constructed BloomFilter";
  uint64_t h1 = Mix(token);
  uint64_t h2 = Mix(token ^ 0xa5a5a5a5a5a5a5a5ull) | 1;  // odd stride
  for (uint32_t i = 0; i < hash_count_; ++i) {
    uint64_t bit = (h1 + i * h2) % bit_count_;
    words_[bit >> 6] |= 1ull << (bit & 63);
  }
  ++added_;
}

bool BloomFilter::MayContain(uint64_t token) const {
  if (bit_count_ == 0) {
    return false;  // empty filter holds nothing
  }
  uint64_t h1 = Mix(token);
  uint64_t h2 = Mix(token ^ 0xa5a5a5a5a5a5a5a5ull) | 1;
  for (uint32_t i = 0; i < hash_count_; ++i) {
    uint64_t bit = (h1 + i * h2) % bit_count_;
    if ((words_[bit >> 6] & (1ull << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

double BloomFilter::AnalyticFpRate() const {
  if (bit_count_ == 0 || added_ == 0) {
    return 0.0;
  }
  double kn_over_m = static_cast<double>(hash_count_) *
                     static_cast<double>(added_) /
                     static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-kn_over_m),
                  static_cast<double>(hash_count_));
}

double BloomFilter::FillFactor() const {
  if (bit_count_ == 0) {
    return 0.0;
  }
  uint64_t set = 0;
  for (uint64_t word : words_) {
    set += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return static_cast<double>(set) / static_cast<double>(bit_count_);
}

void BloomFilter::Serialize(BinaryWriter* writer) const {
  writer->PutU64(bit_count_);
  writer->PutU32(hash_count_);
  writer->PutU64(added_);
  for (uint64_t word : words_) {
    writer->PutU64(word);
  }
}

Result<BloomFilter> BloomFilter::Deserialize(BinaryReader* reader) {
  BloomFilter filter;
  VDB_ASSIGN_OR_RETURN(filter.bit_count_, reader->GetU64("bloom bit count"));
  VDB_ASSIGN_OR_RETURN(filter.hash_count_, reader->GetU32("bloom hashes"));
  VDB_ASSIGN_OR_RETURN(filter.added_, reader->GetU64("bloom added"));
  if (filter.bit_count_ % 64 != 0 || filter.bit_count_ > kMaxBits) {
    return Status::Corruption(
        StrFormat("implausible bloom bit count %llu",
                  static_cast<unsigned long long>(filter.bit_count_)));
  }
  if (filter.bit_count_ > 0 && (filter.hash_count_ < 1 ||
                                filter.hash_count_ > 30)) {
    return Status::Corruption(
        StrFormat("implausible bloom hash count %u", filter.hash_count_));
  }
  size_t words = static_cast<size_t>(filter.bit_count_ / 64);
  if (reader->remaining() < words * sizeof(uint64_t)) {
    return Status::Corruption("truncated bloom bit vector");
  }
  filter.words_.resize(words);
  for (uint64_t& word : filter.words_) {
    VDB_ASSIGN_OR_RETURN(word, reader->GetU64("bloom word"));
  }
  return filter;
}

}  // namespace index
}  // namespace vdb
