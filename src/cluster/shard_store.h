#ifndef VDB_CLUSTER_SHARD_STORE_H_
#define VDB_CLUSTER_SHARD_STORE_H_

#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "util/result.h"

namespace vdb {
namespace cluster {

struct SplitStats {
  uint64_t generation = 0;       // source generation that was split
  std::vector<int> videos_per_shard;
  int segments_linked = 0;       // hardlinked (or copied) into shard dirs
  int segments_reused = 0;       // already present from an earlier split
};

// The name of shard `i`'s store directory under the split output root.
std::string ShardDirName(int shard_id);

// Splits the newest loadable generation of the store at `src_dir` into
// `map.shard_count` per-shard stores under `out_dir`/shard-<i>.
//
// This is a manifest-only operation: segments are content-addressed, so a
// shard store is hardlinks (copies across filesystems) to the source
// segments plus a manifest listing just that shard's videos, published at
// the *source* generation — re-running a split after the source advances
// re-publishes each shard at the new generation, and a serving vdbserve
// picks it up with RELOAD. Each shard directory also receives a SHARDMAP
// sidecar carrying `map` and its own shard id.
//
// Within a shard, videos keep the source manifest's relative order (the
// source's video-id order). A router that concatenates shard 0..N-1 in
// order therefore enumerates videos exactly like a single server started
// on the shard directories in order — the identity the cluster property
// tests pin.
Result<SplitStats> SplitStore(const std::string& src_dir,
                              const std::string& out_dir,
                              const ShardMap& map);

}  // namespace cluster
}  // namespace vdb

#endif  // VDB_CLUSTER_SHARD_STORE_H_
