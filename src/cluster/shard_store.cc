#include "cluster/shard_store.h"

#include <utility>

#include "store/catalog_store.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace vdb {
namespace cluster {

std::string ShardDirName(int shard_id) {
  return StrFormat("shard-%d", shard_id);
}

Result<SplitStats> SplitStore(const std::string& src_dir,
                              const std::string& out_dir,
                              const ShardMap& map) {
  if (map.shard_count < 1) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  store::CatalogStore source(src_dir);
  // Split the newest generation that actually loads — CurrentManifest alone
  // would happily split a manifest whose segments are corrupt.
  store::OpenStats open_stats;
  VDB_RETURN_IF_ERROR(source.Open(&open_stats).status());
  VDB_ASSIGN_OR_RETURN(store::Manifest manifest,
                       source.ManifestAt(open_stats.generation));

  SplitStats stats;
  stats.generation = open_stats.generation;
  stats.videos_per_shard.assign(static_cast<size_t>(map.shard_count), 0);

  VDB_RETURN_IF_ERROR(CreateDirIfMissing(out_dir));
  std::vector<store::Manifest> shard_manifests(
      static_cast<size_t>(map.shard_count));
  for (auto& m : shard_manifests) {
    m.generation = stats.generation;
  }

  for (const store::SegmentRef& ref : manifest.segments) {
    int shard = map.ShardOf(ref.video_name);
    const std::string shard_dir = out_dir + "/" + ShardDirName(shard);
    VDB_RETURN_IF_ERROR(CreateDirIfMissing(shard_dir));
    const std::string target = shard_dir + "/" + ref.file;
    if (FileExists(target)) {
      // Content-addressed names make "already present" equal to "already
      // identical" — an earlier split (or generation) linked it.
      ++stats.segments_reused;
    } else {
      VDB_RETURN_IF_ERROR(
          LinkOrCopyFile(src_dir + "/" + ref.file, target));
      ++stats.segments_linked;
    }
    shard_manifests[static_cast<size_t>(shard)].segments.push_back(ref);
    ++stats.videos_per_shard[static_cast<size_t>(shard)];
  }

  // Publish every shard — including empty ones, which still need a valid
  // (zero-segment) manifest and a SHARDMAP so a vdbserve can serve them.
  for (int shard = 0; shard < map.shard_count; ++shard) {
    const std::string shard_dir = out_dir + "/" + ShardDirName(shard);
    VDB_RETURN_IF_ERROR(CreateDirIfMissing(shard_dir));
    VDB_RETURN_IF_ERROR(SyncDir(shard_dir));  // linked segments first
    VDB_RETURN_IF_ERROR(store::PublishManifest(
        shard_dir, shard_manifests[static_cast<size_t>(shard)]));
    ShardMapFile file;
    file.map = map;
    file.shard_id = shard;
    VDB_RETURN_IF_ERROR(SaveShardMap(shard_dir, file));
  }
  return stats;
}

}  // namespace cluster
}  // namespace vdb
