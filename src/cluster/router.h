#ifndef VDB_CLUSTER_ROUTER_H_
#define VDB_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace cluster {

struct ShardEndpoint {
  std::string host = "127.0.0.1";
  int port = -1;  // < 0 = absent (only meaningful for replicas)
};

// One shard's backends: the primary vdbserve plus an optional read replica
// serving the same shard directory. Reads prefer the primary but hedge to
// the replica when the primary is slow, and fail over to it when the
// primary is down; RELOAD goes to both.
struct ShardBackends {
  ShardEndpoint primary;
  ShardEndpoint replica;

  bool has_replica() const { return replica.port >= 0; }
};

struct RouterOptions {
  // The router's own listening front end. offload_threads is raised to at
  // least max(4, 2 x shard count) — every verb's dispatch blocks on
  // backend sockets, so it must never run on an event loop.
  serve::ServerOptions frontend;

  // Per-backend connection options for the pools. max_retries is raised to
  // at least 1 so a pooled connection whose backend restarted reconnects
  // instead of sticking poisoned.
  serve::ClientOptions backend;

  // Hedged reads: if the primary has not answered after this long and the
  // shard has a replica, the same request is issued to the replica and the
  // first answer wins. <= 0 disables hedging (replica is failover-only).
  int hedge_after_ms = 50;

  // After a primary's transport fails, reads go straight to the replica
  // for this long before the primary is probed again.
  int down_cooldown_ms = 1'000;

  // Cap on the distributed QUERY widening loop; matches the single-node
  // index's own widening cap so a sharded query can never take more
  // doubling rounds than one server would.
  int max_widen_rounds = 64;

  // Per-endpoint cap on pooled idle connections.
  int max_pooled_connections = 8;
};

// The scatter-gather front of a sharded catalog cluster. Speaks the same
// wire protocol as vdbserve, on both sides: clients connect to the router
// exactly as they would to a single server, and the router fans out to the
// per-shard vdbserve backends over pooled serve::Clients.
//
// Verb semantics:
//   QUERY  — distributed top-k. The router drives the widening loop that a
//            single server runs inside its variance index: each round asks
//            every shard for its top-k strictly inside the current
//            (alpha, beta) band (exact_band probes) plus its in-band and
//            eligible counts, and stops exactly when a single node would —
//            when the global in-band count reaches top_k or the global
//            eligible count. The final round's hits are translated to
//            global video ids and merged by (distance, video id, shot),
//            which makes the answer byte-identical to one server holding
//            the merged catalog.
//   QUERYFRAME — one-round scatter-gather: every shard answers its own
//            top-k from its frame index; hits are translated to global
//            video ids and merged by (score, video id, shot), candidates
//            and probed counts summed — byte-identical to one server
//            holding the merged catalog.
//   LIST   — scatter-gather concatenation in shard order, ids translated.
//   STATS  — the router's own metrics, plus aggregated catalog counts and
//            per-shard "shard<K>/<verb>" backend-latency rows.
//   TREE   — routed point-wise to the shard owning the video id.
//   RELOAD — fanned out to every backend (primaries and replicas); shard
//            video-id bases are recomputed afterwards.
//   PING   — answered locally.
//
// Degraded mode: when a shard's primary and replica are both unreachable,
// scatter-gather verbs answer from the surviving shards and report
// shards_ok < shards_total on the response instead of failing; only when
// every shard is unreachable does a verb return an error.
class Router {
 public:
  Router(RouterOptions options, std::vector<ShardBackends> shards);

  // Stops the router if it is still running.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Learns every shard's video count (computing global id bases), then
  // binds the listening socket and starts serving. Fails if any shard has
  // neither a reachable primary nor a reachable replica.
  Status Start();

  void Stop();

  // The port actually bound (meaningful after a successful Start).
  int port() const { return frontend_.port(); }

  int shard_count() const { return static_cast<int>(shards_.size()); }

  const serve::ServerMetrics& metrics() const { return frontend_.metrics(); }

  // Request dispatch, exposed for tests: exactly what the front end's
  // offload executor runs for a decoded request frame.
  serve::Response Dispatch(const serve::Request& request);

 private:
  // One pooled backend address with its health marker.
  struct Endpoint {
    ShardEndpoint addr;
    std::mutex mu;
    std::vector<serve::Client> idle;
    // steady-clock ms until which reads skip this endpoint; 0 = healthy.
    std::atomic<int64_t> down_until_ms{0};
  };

  struct Shard {
    Endpoint primary;
    Endpoint replica;  // addr.port < 0 = absent
  };

  // Global video-id layout: shard i's local id v is global id base[i] + v,
  // matching a single server loading the shard stores in order.
  struct ShardSpan {
    int base = 0;
    int count = 0;
  };

  // Tracks detached hedge threads so Stop() can wait them out. Held via
  // shared_ptr: each detached thread keeps its own reference, so the final
  // Exit() — which may run after WaitIdle() has already returned and the
  // Router is being destroyed — still notifies a live condition variable.
  class InflightGate {
   public:
    void Enter();
    void Exit();
    void WaitIdle();

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    int inflight_ = 0;
  };

  static int64_t NowMs();

  // One call on one endpoint via its pool; marks the endpoint down on
  // transport failure, healthy on success.
  Result<serve::Response> CallEndpoint(Endpoint& endpoint,
                                       const serve::Request& request);

  // The read path for one shard: primary with hedged/failover replica.
  // Records the per-shard latency lane.
  Result<serve::Response> CallShard(int shard, const serve::Request& request);

  // CallShard on every shard concurrently.
  std::vector<Result<serve::Response>> FanOut(const serve::Request& request);

  // LISTs every shard and recomputes the id spans. `require_all` makes any
  // unreachable shard an error (Start); otherwise unreachable shards keep
  // their previous span.
  Status RefreshSpans(bool require_all);

  std::shared_ptr<const std::vector<ShardSpan>> spans() const;

  serve::Response HandlePing(const serve::Request& request) const;
  serve::Response HandleQuery(const serve::QueryRequest& request);
  serve::Response HandleQueryFrame(const serve::QueryFrameRequest& request);
  serve::Response HandleTree(const serve::TreeRequest& request);
  serve::Response HandleList();
  serve::Response HandleStats();
  serve::Response HandleReload(const std::string& path);

  RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex spans_mu_;
  std::shared_ptr<const std::vector<ShardSpan>> spans_;

  // Per-shard backend-call latency lanes ("shard<K>/<verb>" STATS rows).
  // A shard's lane is reset when its backends are reloaded — a restarted
  // backend starts a new catalog epoch, and stale outage latencies would
  // pollute the merged percentiles forever.
  serve::ServerMetrics shard_metrics_;

  std::shared_ptr<InflightGate> hedges_ = std::make_shared<InflightGate>();
  std::atomic<bool> stopping_{false};

  serve::FrontEnd frontend_;
};

}  // namespace cluster
}  // namespace vdb

#endif  // VDB_CLUSTER_ROUTER_H_
