#include "cluster/shard_map.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "video/video_io.h"  // Fnv1a32

namespace vdb {
namespace cluster {
namespace {

constexpr char kShardMapMagic[8] = {'V', 'D', 'B', 'S', 'H', 'M', '0', '1'};
constexpr uint32_t kShardMapFormatVersion = 1;
// A cluster beyond this is a config typo, not a deployment.
constexpr uint32_t kMaxShardCount = 1u << 12;

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

int ShardMap::ShardOf(std::string_view video_name) const {
  if (shard_count <= 1) {
    return 0;
  }
  // Feed the seed through the same FNV step function so two seeds never
  // differ by a simple xor of the result.
  uint64_t hash = Fnv1a64(video_name);
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (seed >> shift) & 0xff;
    hash *= 0x100000001b3ull;
  }
  // FNV's low bits are weak: bit 0 of the raw hash is just the parity of
  // the input bytes' low bits (xor-then-multiply-by-odd never mixes higher
  // bits downward), so `% 2` or `% 4` would collapse whole families of
  // names onto one shard. Avalanche the hash (murmur3 fmix64) so every
  // input bit reaches every output bit before the modulo.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return static_cast<int>(hash % static_cast<uint64_t>(shard_count));
}

std::string EncodeShardMap(const ShardMapFile& file) {
  BinaryWriter payload;
  payload.PutU32(kShardMapFormatVersion);
  payload.PutU32(static_cast<uint32_t>(file.map.shard_count));
  payload.PutU64(file.map.seed);
  payload.PutU32(static_cast<uint32_t>(file.shard_id));
  std::string body = payload.TakeBuffer();

  std::string out;
  out.reserve(8 + 4 + body.size());
  out.append(kShardMapMagic, 8);
  BinaryWriter header;
  header.PutU32(Fnv1a32(reinterpret_cast<const uint8_t*>(body.data()),
                        body.size()));
  out += header.buffer();
  out += body;
  return out;
}

Result<ShardMapFile> DecodeShardMap(std::string_view bytes) {
  if (bytes.size() < 12 ||
      std::memcmp(bytes.data(), kShardMapMagic, 8) != 0) {
    return Status::Corruption("bad shard map magic");
  }
  BinaryReader header(bytes.substr(8, 4));
  VDB_ASSIGN_OR_RETURN(uint32_t stored, header.GetU32("shard map checksum"));
  std::string_view body = bytes.substr(12);
  uint32_t actual = Fnv1a32(reinterpret_cast<const uint8_t*>(body.data()),
                            body.size());
  if (actual != stored) {
    return Status::Corruption(
        StrFormat("shard map checksum mismatch (stored %08x, actual %08x)",
                  stored, actual));
  }
  BinaryReader r(body);
  VDB_ASSIGN_OR_RETURN(uint32_t version, r.GetU32("shard map version"));
  if (version != kShardMapFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported shard map version %u", version));
  }
  ShardMapFile file;
  VDB_ASSIGN_OR_RETURN(uint32_t count, r.GetU32("shard count"));
  if (count < 1 || count > kMaxShardCount) {
    return Status::Corruption(
        StrFormat("implausible shard count %u", count));
  }
  file.map.shard_count = static_cast<int>(count);
  VDB_ASSIGN_OR_RETURN(file.map.seed, r.GetU64("shard map seed"));
  VDB_ASSIGN_OR_RETURN(uint32_t shard_id, r.GetU32("shard id"));
  if (shard_id >= count) {
    return Status::Corruption(StrFormat(
        "shard id %u out of range [0, %u)", shard_id, count));
  }
  file.shard_id = static_cast<int>(shard_id);
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after shard map");
  }
  return file;
}

Status SaveShardMap(const std::string& dir, const ShardMapFile& file) {
  if (file.map.shard_count < 1 ||
      file.map.shard_count > static_cast<int>(kMaxShardCount)) {
    return Status::InvalidArgument(
        StrFormat("shard count %d out of range", file.map.shard_count));
  }
  if (file.shard_id < 0 || file.shard_id >= file.map.shard_count) {
    return Status::InvalidArgument(
        StrFormat("shard id %d out of range [0, %d)", file.shard_id,
                  file.map.shard_count));
  }
  return WriteFileAtomic(dir + "/" + kShardMapFileName,
                         EncodeShardMap(file), nullptr, "shardmap");
}

Result<ShardMapFile> LoadShardMap(const std::string& dir) {
  VDB_ASSIGN_OR_RETURN(std::string contents,
                       ReadFileToString(dir + "/" + kShardMapFileName));
  return DecodeShardMap(contents);
}

}  // namespace cluster
}  // namespace vdb
