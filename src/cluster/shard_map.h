#ifndef VDB_CLUSTER_SHARD_MAP_H_
#define VDB_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace vdb {
namespace cluster {

// Deterministic placement of videos onto shards: a video belongs to
// `Fnv1a64(name) mixed with seed, mod shard_count`. The name is the shard
// key (not the dense video id) because names are stable across catalog
// rebuilds and across the id renumbering a shard split performs, so the
// same video always lands on the same shard no matter which node computed
// the placement.
struct ShardMap {
  int shard_count = 1;
  // Stirred into the hash so a re-shard with the same count can still move
  // every video (useful for rebalancing tests, and for not coupling the
  // placement to the store's segment content hashes).
  uint64_t seed = 0;

  // The shard `video_name` belongs to, in [0, shard_count).
  int ShardOf(std::string_view video_name) const;
};

// The SHARDMAP sidecar written into each per-shard store directory by
// `vdbtool store-shard`: the cluster-wide map plus this directory's own
// shard id. vdbserve reads it to surface shard identity via STATS, and the
// router uses that to sanity-check its fan-out wiring.
struct ShardMapFile {
  ShardMap map;
  int shard_id = 0;
};

inline constexpr char kShardMapFileName[] = "SHARDMAP";

// Serialized SHARDMAP bytes (magic + FNV-1a checksum + fields), and the
// inverse. Exposed for tests; most callers want the file pair below.
std::string EncodeShardMap(const ShardMapFile& file);
Result<ShardMapFile> DecodeShardMap(std::string_view bytes);

// Writes/reads <dir>/SHARDMAP atomically. Load returns kNotFound when the
// directory carries no shard map (a plain, unsharded store).
Status SaveShardMap(const std::string& dir, const ShardMapFile& file);
Result<ShardMapFile> LoadShardMap(const std::string& dir);

}  // namespace cluster
}  // namespace vdb

#endif  // VDB_CLUSTER_SHARD_MAP_H_
