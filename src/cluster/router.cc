#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace vdb {
namespace cluster {
namespace {

using serve::Request;
using serve::Response;
using serve::Verb;

// Mirror of the single server's QUERY bound, so the router rejects exactly
// what a backend would.
constexpr int kMaxTopK = 1 << 16;

serve::ServerOptions RouterFrontendOptions(serve::ServerOptions options,
                                           int shard_count) {
  // Every routed verb blocks on backend sockets, so dispatch must always
  // run on the offload executor — and wide enough that one slow shard
  // cannot starve unrelated client requests.
  options.offload_threads =
      std::max({options.offload_threads, 2 * shard_count, 4});
  options.shard_id = -1;
  options.shard_count = shard_count;
  return options;
}

// The result slot a hedged primary call fills from its detached thread.
struct HedgeState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<Response> result = Status::Internal("hedge pending");
};

bool ResponseOk(const Result<Response>& result) {
  return result.ok() && result->status.ok();
}

}  // namespace

void Router::InflightGate::Enter() {
  std::lock_guard<std::mutex> lock(mu_);
  ++inflight_;
}

void Router::InflightGate::Exit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_all();
}

void Router::InflightGate::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return inflight_ == 0; });
}

int64_t Router::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Router::Router(RouterOptions options, std::vector<ShardBackends> shards)
    : options_(std::move(options)),
      spans_(std::make_shared<std::vector<ShardSpan>>(shards.size())),
      shard_metrics_(std::max<int>(1, static_cast<int>(shards.size()))),
      frontend_(
          RouterFrontendOptions(options_.frontend,
                                static_cast<int>(shards.size())),
          [this](const Request& request) { return Dispatch(request); },
          // PING is answered locally from atomics; everything else blocks
          // on backend sockets and must leave the event loop.
          [](Verb verb) { return verb != Verb::kPing; }) {
  for (ShardBackends& backends : shards) {
    auto shard = std::make_unique<Shard>();
    shard->primary.addr = std::move(backends.primary);
    shard->replica.addr = std::move(backends.replica);
    shards_.push_back(std::move(shard));
  }
  // A pooled connection whose backend restarted must reconnect, not stick
  // poisoned: the whole failover design assumes the client layer retries.
  options_.backend.max_retries = std::max(1, options_.backend.max_retries);
}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (shards_.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  // Learn every shard's video count up front: global id translation is
  // meaningless until the spans exist, so an unreachable shard (primary
  // *and* replica) fails Start instead of starting a router that would
  // mistranslate ids.
  VDB_RETURN_IF_ERROR(RefreshSpans(/*require_all=*/true));
  return frontend_.Start();
}

void Router::Stop() {
  stopping_.store(true, std::memory_order_release);
  frontend_.Stop();
  // Abandoned hedge primaries may still be running; they touch shard state
  // owned by this object, so wait them out before destruction.
  hedges_->WaitIdle();
}

std::shared_ptr<const std::vector<Router::ShardSpan>> Router::spans() const {
  std::lock_guard<std::mutex> lock(spans_mu_);
  return spans_;
}

Result<Response> Router::CallEndpoint(Endpoint& endpoint,
                                      const Request& request) {
  serve::ClientOptions client_options = options_.backend;
  Result<serve::Client> client = [&]() -> Result<serve::Client> {
    {
      std::lock_guard<std::mutex> lock(endpoint.mu);
      if (!endpoint.idle.empty()) {
        serve::Client pooled = std::move(endpoint.idle.back());
        endpoint.idle.pop_back();
        return pooled;
      }
    }
    return serve::Client::Connect(endpoint.addr.host, endpoint.addr.port,
                                  client_options);
  }();
  if (!client.ok()) {
    endpoint.down_until_ms.store(NowMs() + options_.down_cooldown_ms,
                                 std::memory_order_relaxed);
    return client.status();
  }
  Result<Response> response = client->Call(request);
  if (!response.ok()) {
    // Transport failure with the client's own reconnect retries already
    // exhausted: the backend is down or unreachable. Cool it down so reads
    // go straight to the replica for a while.
    endpoint.down_until_ms.store(NowMs() + options_.down_cooldown_ms,
                                 std::memory_order_relaxed);
    return response;
  }
  endpoint.down_until_ms.store(0, std::memory_order_relaxed);
  if (client->connected()) {
    std::lock_guard<std::mutex> lock(endpoint.mu);
    if (static_cast<int>(endpoint.idle.size()) <
        options_.max_pooled_connections) {
      endpoint.idle.push_back(std::move(*client));
    }
  }
  return response;
}

Result<Response> Router::CallShard(int shard, const Request& request) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  Stopwatch timer;
  Result<Response> result = [&]() -> Result<Response> {
    if (s.replica.addr.port < 0) {
      return CallEndpoint(s.primary, request);
    }
    if (s.primary.down_until_ms.load(std::memory_order_relaxed) > NowMs()) {
      // Primary cooling down after a failure: replica first, primary only
      // as the last resort (it may have just come back).
      Result<Response> from_replica = CallEndpoint(s.replica, request);
      if (from_replica.ok()) {
        return from_replica;
      }
      return CallEndpoint(s.primary, request);
    }
    if (options_.hedge_after_ms <= 0) {
      Result<Response> from_primary = CallEndpoint(s.primary, request);
      if (from_primary.ok()) {
        return from_primary;
      }
      return CallEndpoint(s.replica, request);
    }
    // Hedged read: the primary runs on its own thread; if it has not
    // answered within hedge_after_ms the replica is asked too, and the
    // first usable answer wins. The detached thread holds the inflight
    // gate so Stop() can wait out an abandoned primary call.
    auto state = std::make_shared<HedgeState>();
    std::shared_ptr<InflightGate> gate = hedges_;
    gate->Enter();
    std::thread([this, &s, request, state, gate] {
      Result<Response> from_primary = CallEndpoint(s.primary, request);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->result = std::move(from_primary);
        state->done = true;
      }
      state->cv.notify_all();
      gate->Exit();
    }).detach();
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->cv.wait_for(lock,
                             std::chrono::milliseconds(
                                 options_.hedge_after_ms),
                             [&] { return state->done; })) {
        if (state->result.ok()) {
          return std::move(state->result);
        }
        lock.unlock();
        return CallEndpoint(s.replica, request);
      }
    }
    Result<Response> from_replica = CallEndpoint(s.replica, request);
    if (from_replica.ok()) {
      return from_replica;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    return std::move(state->result);
  }();
  shard_metrics_.OnRequest(request.verb, ResponseOk(result),
                           timer.ElapsedSeconds() * 1e6, shard);
  return result;
}

std::vector<Result<Response>> Router::FanOut(const Request& request) {
  std::vector<Result<Response>> results(
      shards_.size(),
      Result<Response>(Status::Internal("fan-out pending")));
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, &request, &results] {
      results[i] = CallShard(static_cast<int>(i), request);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return results;
}

Status Router::RefreshSpans(bool require_all) {
  Request list;
  list.verb = Verb::kList;
  std::vector<Result<Response>> results = FanOut(list);
  std::shared_ptr<const std::vector<ShardSpan>> old = spans();
  auto next = std::make_shared<std::vector<ShardSpan>>(shards_.size());
  int base = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    int count = 0;
    if (ResponseOk(results[i])) {
      count = static_cast<int>(results[i]->list.videos.size());
    } else if (require_all) {
      Status failure = results[i].ok() ? results[i]->status
                                       : results[i].status();
      return Status(failure.code(),
                    StrFormat("shard %d unreachable: %s",
                              static_cast<int>(i),
                              failure.message().c_str()));
    } else {
      // Unreachable shard: keep its previous span so the surviving
      // shards' global ids stay stable while it is down.
      count = (*old)[i].count;
    }
    (*next)[i].base = base;
    (*next)[i].count = count;
    base += count;
  }
  {
    std::lock_guard<std::mutex> lock(spans_mu_);
    spans_ = std::move(next);
  }
  return Status::Ok();
}

Response Router::Dispatch(const Request& request) {
  switch (request.verb) {
    case Verb::kPing:
      return HandlePing(request);
    case Verb::kStats:
      return HandleStats();
    case Verb::kQuery:
      return HandleQuery(request.query);
    case Verb::kTree:
      return HandleTree(request.tree);
    case Verb::kList:
      return HandleList();
    case Verb::kQueryFrame:
      return HandleQueryFrame(request.query_frame);
    case Verb::kReload:
      return HandleReload(request.reload_path);
    case Verb::kError:
      break;
  }
  return serve::ErrorResponse(
      Verb::kError, Status::InvalidArgument("unsupported request verb"));
}

Response Router::HandlePing(const Request& request) const {
  Response response;
  response.verb = Verb::kPing;
  response.ping_token = request.ping_token;
  int64_t now = NowMs();
  uint32_t ok = 0;
  for (const auto& shard : shards_) {
    bool primary_up =
        shard->primary.down_until_ms.load(std::memory_order_relaxed) <= now;
    bool replica_up =
        shard->replica.addr.port >= 0 &&
        shard->replica.down_until_ms.load(std::memory_order_relaxed) <= now;
    if (primary_up || replica_up) {
      ++ok;
    }
  }
  response.shards_ok = ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleQuery(const serve::QueryRequest& request) {
  Response response;
  response.verb = Verb::kQuery;
  if (request.top_k < 1 || request.top_k > kMaxTopK) {
    response.status = Status::InvalidArgument(
        StrFormat("top_k %d out of range [1, %d]", request.top_k, kMaxTopK));
    return response;
  }
  if (request.var_ba < 0 || request.var_oa < 0) {
    response.status =
        Status::InvalidArgument("variances must be non-negative");
    return response;
  }

  // The distributed widening loop. A single server widens (alpha, beta) by
  // doubling until its in-band match count reaches top_k or the whole
  // eligible set. Per-shard widening would diverge — each shard would stop
  // at a different band — so the router drives the loop: every round asks
  // all shards for the *same* fixed band, and the per-shard in-band /
  // eligible counts decide globally when to stop. Repeated doubling is
  // bit-exact, so round t's band equals the band a single node would test
  // on attempt t.
  Request probe;
  probe.verb = Verb::kQuery;
  probe.query = request;
  probe.query.exact_band = true;
  int rounds = request.exact_band ? 1 : std::max(1, options_.max_widen_rounds);
  std::vector<Result<Response>> results;
  uint64_t in_band = 0;
  uint64_t eligible = 0;
  for (int round = 0; round < rounds; ++round) {
    results = FanOut(probe);
    in_band = 0;
    eligible = 0;
    for (const Result<Response>& r : results) {
      if (ResponseOk(r)) {
        in_band += r->query.in_band;
        eligible += r->query.eligible;
      }
    }
    if (in_band >= static_cast<uint64_t>(request.top_k) ||
        in_band >= eligible) {
      break;
    }
    probe.query.alpha *= 2.0;
    probe.query.beta *= 2.0;
  }

  std::shared_ptr<const std::vector<ShardSpan>> layout = spans();
  std::vector<serve::SuggestionWire> merged;
  uint32_t shards_ok = 0;
  Status first_failure;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<Response>& r = results[i];
    if (!ResponseOk(r)) {
      if (first_failure.ok()) {
        first_failure = r.ok() ? r->status : r.status();
      }
      continue;
    }
    ++shards_ok;
    for (const serve::SuggestionWire& s : r->query.suggestions) {
      serve::SuggestionWire global = s;
      global.video_id += (*layout)[i].base;
      merged.push_back(std::move(global));
    }
  }
  if (shards_ok == 0) {
    response.status = Status(first_failure.ok() ? StatusCode::kIoError
                                                : first_failure.code(),
                             "no shard answered the query: " +
                                 std::string(first_failure.message()));
    return response;
  }
  // The single-node tie-break, on global ids: each shard's hits are its k
  // best within the final band, so the global k best are in the union.
  std::sort(merged.begin(), merged.end(),
            [](const serve::SuggestionWire& a,
               const serve::SuggestionWire& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.video_id != b.video_id) return a.video_id < b.video_id;
              return a.shot_index < b.shot_index;
            });
  if (merged.size() > static_cast<size_t>(request.top_k)) {
    merged.resize(static_cast<size_t>(request.top_k));
  }
  response.query.suggestions = std::move(merged);
  if (request.exact_band) {
    response.query.in_band = in_band;
    response.query.eligible = eligible;
  }
  response.shards_ok = shards_ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleQueryFrame(const serve::QueryFrameRequest& request) {
  Response response;
  response.verb = Verb::kQueryFrame;
  if (request.top_k < 1 || request.top_k > kMaxTopK) {
    response.status = Status::InvalidArgument(
        StrFormat("top_k %d out of range [1, %d]", request.top_k, kMaxTopK));
    return response;
  }
  if (request.has_signature() == request.has_frame()) {
    response.status = Status::InvalidArgument(
        "QUERYFRAME needs exactly one of a signature or a raw frame");
    return response;
  }
  // Frame-index queries need no widening loop: every shard scores its own
  // shots against the full query token set independently, so one fan-out
  // round suffices and the union of per-shard top-k contains the global
  // top-k (a shot's score does not depend on other shards).
  Request probe;
  probe.verb = Verb::kQueryFrame;
  probe.query_frame = request;
  std::vector<Result<Response>> results = FanOut(probe);
  std::shared_ptr<const std::vector<ShardSpan>> layout = spans();
  std::vector<serve::FrameHitWire> merged;
  uint32_t shards_ok = 0;
  Status first_failure;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<Response>& r = results[i];
    if (!ResponseOk(r)) {
      if (first_failure.ok()) {
        first_failure = r.ok() ? r->status : r.status();
      }
      continue;
    }
    ++shards_ok;
    // query_tokens is a property of the query, identical on every shard;
    // candidates/probed sum because the shards partition the posting lists,
    // reproducing the counts one server with the merged catalog reports.
    response.query_frame.query_tokens = r->query_frame.query_tokens;
    response.query_frame.candidates += r->query_frame.candidates;
    response.query_frame.probed += r->query_frame.probed;
    for (const serve::FrameHitWire& hit : r->query_frame.hits) {
      serve::FrameHitWire global = hit;
      global.video_id += (*layout)[i].base;
      merged.push_back(std::move(global));
    }
  }
  if (shards_ok == 0) {
    response.status = Status(first_failure.ok() ? StatusCode::kIoError
                                                : first_failure.code(),
                             "no shard answered the frame query: " +
                                 std::string(first_failure.message()));
    return response;
  }
  // The single-node tie-break on global ids (score desc, video, shot) — a
  // total order, so the merged answer is byte-identical to one server
  // holding the merged catalog.
  std::sort(merged.begin(), merged.end(),
            [](const serve::FrameHitWire& a, const serve::FrameHitWire& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.video_id != b.video_id) return a.video_id < b.video_id;
              return a.shot_index < b.shot_index;
            });
  if (merged.size() > static_cast<size_t>(request.top_k)) {
    merged.resize(static_cast<size_t>(request.top_k));
  }
  response.query_frame.hits = std::move(merged);
  response.shards_ok = shards_ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleTree(const serve::TreeRequest& request) {
  Response response;
  response.verb = Verb::kTree;
  std::shared_ptr<const std::vector<ShardSpan>> layout = spans();
  int total = 0;
  int shard = -1;
  for (size_t i = 0; i < layout->size(); ++i) {
    const ShardSpan& span = (*layout)[i];
    total += span.count;
    if (request.video_id >= span.base &&
        request.video_id < span.base + span.count) {
      shard = static_cast<int>(i);
    }
  }
  if (shard < 0) {
    // Same shape a single server's catalog lookup reports.
    response.status = Status::NotFound(StrFormat(
        "video id %d (have %d videos)", request.video_id, total));
    return response;
  }
  Request routed;
  routed.verb = Verb::kTree;
  routed.tree = request;
  routed.tree.video_id =
      request.video_id - (*layout)[static_cast<size_t>(shard)].base;
  Result<Response> r = CallShard(shard, routed);
  if (!r.ok()) {
    response.status = r.status();
    return response;
  }
  response = std::move(*r);
  // Node ids are per-video, so the body passes through untranslated; only
  // the health fields are the router's to report.
  response.shards_ok = response.status.ok() ? 1 : 0;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleList() {
  Response response;
  response.verb = Verb::kList;
  Request list;
  list.verb = Verb::kList;
  std::vector<Result<Response>> results = FanOut(list);
  std::shared_ptr<const std::vector<ShardSpan>> layout = spans();
  uint32_t shards_ok = 0;
  Status first_failure;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<Response>& r = results[i];
    if (!ResponseOk(r)) {
      if (first_failure.ok()) {
        first_failure = r.ok() ? r->status : r.status();
      }
      continue;
    }
    ++shards_ok;
    for (const serve::VideoSummary& v : r->list.videos) {
      serve::VideoSummary global = v;
      global.video_id += (*layout)[i].base;
      response.list.videos.push_back(std::move(global));
    }
  }
  if (shards_ok == 0) {
    response.status = Status(first_failure.ok() ? StatusCode::kIoError
                                                : first_failure.code(),
                             "no shard answered the list: " +
                                 std::string(first_failure.message()));
    return response;
  }
  response.shards_ok = shards_ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleStats() {
  Response response;
  response.verb = Verb::kStats;
  Request stats;
  stats.verb = Verb::kStats;
  std::vector<Result<Response>> results = FanOut(stats);
  // The router's own front-end counters are the base; the catalog shape is
  // the sum over the shards that answered.
  response.stats = frontend_.metrics().Snapshot();
  response.stats.shard_id = -1;
  response.stats.shard_count = static_cast<int>(shards_.size());
  uint32_t shards_ok = 0;
  uint64_t min_generation = 0;
  bool first_ok = true;
  for (const Result<Response>& r : results) {
    if (!ResponseOk(r)) {
      continue;
    }
    ++shards_ok;
    response.stats.videos += r->stats.videos;
    response.stats.indexed_shots += r->stats.indexed_shots;
    response.stats.reloads_ok += r->stats.reloads_ok;
    response.stats.reload_failures += r->stats.reload_failures;
    // The cluster is only as fresh as its stalest shard.
    if (first_ok || r->stats.store_generation < min_generation) {
      min_generation = r->stats.store_generation;
      first_ok = false;
    }
  }
  response.stats.store_generation = min_generation;
  // Per-shard backend-call latency lanes, named so vdbload can report
  // per-shard tail latency from one STATS round trip.
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (serve::VerbStats row :
         shard_metrics_.ShardSnapshot(static_cast<int>(i))) {
      row.verb = StrFormat("shard%d/%s", static_cast<int>(i),
                           row.verb.c_str());
      response.stats.verbs.push_back(std::move(row));
    }
  }
  response.shards_ok = shards_ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

Response Router::HandleReload(const std::string& path) {
  Response response;
  response.verb = Verb::kReload;
  Request reload;
  reload.verb = Verb::kReload;
  reload.reload_path = path;
  // RELOAD is a write: it goes to every backend directly — each primary
  // *and* each replica re-reads its shard store — with no hedging and no
  // failover (a replica standing in for its primary would hide that the
  // primary still serves the old generation).
  struct ShardReload {
    Result<Response> primary = Status::Internal("pending");
    Status replica = Status::Ok();
  };
  std::vector<ShardReload> results(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, &reload, &results] {
      Shard& s = *shards_[i];
      Stopwatch timer;
      results[i].primary = CallEndpoint(s.primary, reload);
      if (s.replica.addr.port >= 0) {
        Result<Response> r = CallEndpoint(s.replica, reload);
        results[i].replica = r.ok() ? r->status : r.status();
      }
      shard_metrics_.OnRequest(Verb::kReload,
                               ResponseOk(results[i].primary),
                               timer.ElapsedSeconds() * 1e6,
                               static_cast<int>(i));
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  uint32_t shards_ok = 0;
  Status first_failure;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!ResponseOk(results[i].primary)) {
      if (first_failure.ok()) {
        first_failure = results[i].primary.ok()
                            ? results[i].primary->status
                            : results[i].primary.status();
      }
      continue;
    }
    ++shards_ok;
    response.reload.videos += results[i].primary->reload.videos;
    response.reload.indexed_shots +=
        results[i].primary->reload.indexed_shots;
    // A reloaded shard starts a new catalog epoch: wipe its latency lane
    // so stale pre-reload (or outage) samples stop polluting percentiles.
    shard_metrics_.ResetShard(static_cast<int>(i));
  }
  if (shards_ok == 0) {
    response.status = Status(first_failure.ok() ? StatusCode::kIoError
                                                : first_failure.code(),
                             "no shard completed the reload: " +
                                 std::string(first_failure.message()));
    return response;
  }
  // Membership may have changed; recompute the global id layout (shards
  // that are down keep their old span).
  Status refreshed = RefreshSpans(/*require_all=*/false);
  (void)refreshed;  // down shards keep their old span; nothing to report
  response.shards_ok = shards_ok;
  response.shards_total = static_cast<uint32_t>(shards_.size());
  return response;
}

}  // namespace cluster
}  // namespace vdb
