#include "core/video_database.h"

#include <atomic>
#include <mutex>

#include "core/kernels.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "video/video_io.h"

namespace vdb {
namespace {

// Analysis stages shared by all ingest paths once the signatures exist:
// detection, features, scene tree.
Status AnalyseFromSignatures(const VideoDatabaseOptions& options,
                             CatalogEntry* entry) {
  CameraTrackingDetector detector(options.detector);
  VDB_ASSIGN_OR_RETURN(ShotDetectionResult detection,
                       detector.DetectFromSignatures(entry->signatures));
  entry->shots = std::move(detection.shots);
  entry->sbd_stats = detection.stage_stats;

  VDB_ASSIGN_OR_RETURN(entry->features,
                       ComputeAllShotFeatures(entry->signatures,
                                              entry->shots));

  SceneTreeBuilder builder(options.scene_tree);
  VDB_ASSIGN_OR_RETURN(entry->scene_tree,
                       builder.Build(entry->signatures, entry->shots));
  return Status::Ok();
}

// The full analysis pipeline for an in-memory video: Step 1 signatures and
// segmentation, Step 2 tree, Step 3 features. Fills everything except
// video_id, and touches no database state — safe to run on any thread.
Status AnalyseVideo(const VideoDatabaseOptions& options, const Video& video,
                    CatalogEntry* entry) {
  entry->name = video.name();
  entry->frame_count = video.frame_count();
  entry->fps = video.fps();
  VDB_ASSIGN_OR_RETURN(entry->signatures, ComputeVideoSignatures(video));
  return AnalyseFromSignatures(options, entry);
}

// Streaming analysis from a .vdb file: one frame resident at a time.
Status AnalyseFile(const VideoDatabaseOptions& options,
                   const std::string& path, CatalogEntry* entry) {
  VDB_ASSIGN_OR_RETURN(VideoFileReader reader, VideoFileReader::Open(path));
  entry->name = reader.name();
  entry->frame_count = reader.frame_count();
  entry->fps = reader.fps();

  VDB_ASSIGN_OR_RETURN(
      entry->signatures.geometry,
      ComputeAreaGeometry(reader.width(), reader.height()));
  entry->signatures.frames.reserve(
      static_cast<size_t>(reader.frame_count()));
  // One workspace for the whole file: after the first frame the reduce
  // loop runs allocation-free (batch ingest runs one AnalyseFile per pool
  // worker, so the workspace is worker-private).
  PyramidWorkspace workspace;
  while (!reader.AtEnd()) {
    // One frame resident at a time: decode, reduce, discard.
    VDB_ASSIGN_OR_RETURN(Frame frame, reader.ReadNextFrame());
    VDB_ASSIGN_OR_RETURN(
        FrameSignature fs,
        ComputeFrameSignature(frame, entry->signatures.geometry, &workspace));
    entry->signatures.frames.push_back(std::move(fs));
  }
  return AnalyseFromSignatures(options, entry);
}

}  // namespace

VideoDatabase::VideoDatabase(VideoDatabaseOptions options)
    : options_(options) {}

int VideoDatabase::CommitLocked(std::unique_ptr<CatalogEntry> entry) {
  entry->video_id = VideoCountLocked();
  index_.AddVideo(entry->video_id, entry->features);
  int id = entry->video_id;
  catalog_.push_back(std::move(entry));
  return id;
}

Result<int> VideoDatabase::Ingest(const Video& video) {
  auto entry = std::make_unique<CatalogEntry>();
  VDB_RETURN_IF_ERROR(AnalyseVideo(options_, video, entry.get()));
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CommitLocked(std::move(entry));
}

Result<int> VideoDatabase::IngestFile(const std::string& path) {
  auto entry = std::make_unique<CatalogEntry>();
  VDB_RETURN_IF_ERROR(AnalyseFile(options_, path, entry.get()));
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CommitLocked(std::move(entry));
}

BatchIngestResult VideoDatabase::IngestBatchImpl(
    int count, const IngestOptions& options,
    const std::function<Status(int, CatalogEntry*)>& analyse) {
  BatchIngestResult out;
  out.video_ids.assign(static_cast<size_t>(count), -1);
  out.statuses.assign(static_cast<size_t>(count), Status::Ok());
  if (count == 0) return out;

  // Phase 1: analyse every video concurrently. Each task owns its slot of
  // `analysed`/`statuses`, so no locking is needed beyond the pool's own.
  std::vector<std::unique_ptr<CatalogEntry>> analysed(
      static_cast<size_t>(count));
  std::vector<unsigned char> failed_analysis(static_cast<size_t>(count), 0);
  int threads =
      options.num_threads <= 0 ? HardwareThreads() : options.num_threads;
  ThreadPool pool(std::min(threads, count));
  std::atomic<bool> abort{false};
  for (int i = 0; i < count; ++i) {
    pool.Submit([&, i]() -> Status {
      size_t slot = static_cast<size_t>(i);
      if (options.fail_fast && abort.load(std::memory_order_acquire)) {
        out.statuses[slot] = Status::FailedPrecondition(
            "skipped: an earlier video in the batch failed (fail_fast)");
        return Status::Ok();
      }
      auto entry = std::make_unique<CatalogEntry>();
      Status s = analyse(i, entry.get());
      if (s.ok()) {
        analysed[slot] = std::move(entry);
      } else {
        out.statuses[slot] = std::move(s);
        failed_analysis[slot] = 1;
        abort.store(true, std::memory_order_release);
      }
      return Status::Ok();  // per-slot statuses carry the real outcomes
    });
  }
  pool.Wait();

  for (int i = 0; i < count; ++i) {
    if (failed_analysis[static_cast<size_t>(i)]) {
      out.first_error = out.statuses[static_cast<size_t>(i)];
      break;
    }
  }

  // Phase 2: commit. With fail_fast the batch is all-or-nothing; otherwise
  // the successes land in input order and failures are reported per slot.
  if (options.fail_fast && !out.first_error.ok()) {
    for (int i = 0; i < count; ++i) {
      size_t slot = static_cast<size_t>(i);
      if (analysed[slot] != nullptr) {
        out.statuses[slot] = Status::FailedPrecondition(
            "analysed but not committed: batch aborted (fail_fast)");
      }
    }
    return out;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (int i = 0; i < count; ++i) {
    size_t slot = static_cast<size_t>(i);
    if (analysed[slot] == nullptr) continue;
    out.video_ids[slot] = CommitLocked(std::move(analysed[slot]));
    ++out.committed;
  }
  return out;
}

BatchIngestResult VideoDatabase::IngestBatch(const std::vector<Video>& videos,
                                             const IngestOptions& options) {
  return IngestBatchImpl(
      static_cast<int>(videos.size()), options,
      [&](int i, CatalogEntry* entry) {
        return AnalyseVideo(options_, videos[static_cast<size_t>(i)], entry);
      });
}

BatchIngestResult VideoDatabase::IngestBatchFiles(
    const std::vector<std::string>& paths, const IngestOptions& options) {
  return IngestBatchImpl(
      static_cast<int>(paths.size()), options,
      [&](int i, CatalogEntry* entry) {
        return AnalyseFile(options_, paths[static_cast<size_t>(i)], entry);
      });
}

Result<int> VideoDatabase::Restore(CatalogEntry entry) {
  if (entry.frame_count <= 0 ||
      entry.frame_count != static_cast<int>(entry.signatures.frames.size())) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' has inconsistent frame counts",
                  entry.name.c_str()));
  }
  if (entry.shots.size() != entry.features.size()) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' has %zu shots but %zu feature rows",
                  entry.name.c_str(), entry.shots.size(),
                  entry.features.size()));
  }
  if (entry.scene_tree.shot_count() != static_cast<int>(entry.shots.size())) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' tree covers %d shots, entry has %zu",
                  entry.name.c_str(), entry.scene_tree.shot_count(),
                  entry.shots.size()));
  }
  VDB_RETURN_IF_ERROR(entry.scene_tree.Validate());

  auto stored = std::make_unique<CatalogEntry>(std::move(entry));
  std::unique_lock<std::shared_mutex> lock(mu_);
  return CommitLocked(std::move(stored));
}

int VideoDatabase::video_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return VideoCountLocked();
}

Result<const CatalogEntry*> VideoDatabase::GetEntryLocked(
    int video_id) const {
  if (video_id < 0 || video_id >= VideoCountLocked()) {
    return Status::NotFound(StrFormat("video id %d (have %d videos)",
                                      video_id, VideoCountLocked()));
  }
  return catalog_[static_cast<size_t>(video_id)].get();
}

Result<const CatalogEntry*> VideoDatabase::GetEntry(int video_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetEntryLocked(video_id);
}

Status VideoDatabase::SetClassification(
    int video_id, VideoClassification classification) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (video_id < 0 || video_id >= VideoCountLocked()) {
    return Status::NotFound(StrFormat("video id %d (have %d videos)",
                                      video_id, VideoCountLocked()));
  }
  catalog_[static_cast<size_t>(video_id)]->classification =
      std::move(classification);
  return Status::Ok();
}

Result<BrowsingSuggestion> VideoDatabase::SuggestLocked(
    const QueryMatch& match) const {
  VDB_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       GetEntryLocked(match.entry.video_id));
  BrowsingSuggestion suggestion;
  suggestion.match = match;
  suggestion.video_name = entry->name;
  int node_id = entry->scene_tree.LargestSceneForShot(match.entry.shot_index);
  if (node_id >= 0) {
    const SceneNode& node = entry->scene_tree.node(node_id);
    suggestion.scene_node = node_id;
    suggestion.scene_label = node.Label();
    suggestion.representative_frame = node.representative_frame;
  } else {
    // The shot names no node (its leaf was out-named); fall back to the
    // leaf itself.
    const SceneNode& leaf = entry->scene_tree.node(
        entry->scene_tree.LeafForShot(match.entry.shot_index));
    suggestion.scene_node = leaf.id;
    suggestion.scene_label = leaf.Label();
    suggestion.representative_frame = leaf.representative_frame;
  }
  return suggestion;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::Search(
    const VarianceQuery& query, int top_k) const {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<QueryMatch> matches = index_.QueryTopK(query, top_k);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, SuggestLocked(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::SearchWithinClass(
    const VarianceQuery& query, int top_k, const ClassFilter& filter) const {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  // How many indexed shots can match the filter at all (stops the band
  // widening early when the class is small).
  int max_matching = 0;
  std::vector<bool> video_matches(static_cast<size_t>(VideoCountLocked()));
  for (int id = 0; id < VideoCountLocked(); ++id) {
    bool ok = filter.Matches(catalog_[static_cast<size_t>(id)]->classification);
    video_matches[static_cast<size_t>(id)] = ok;
    if (ok) {
      max_matching += static_cast<int>(
          catalog_[static_cast<size_t>(id)]->shots.size());
    }
  }
  std::vector<QueryMatch> matches = index_.QueryTopKWhere(
      query, top_k,
      [&](const IndexEntry& e) {
        return e.video_id >= 0 && e.video_id < VideoCountLocked() &&
               video_matches[static_cast<size_t>(e.video_id)];
      },
      max_matching);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, SuggestLocked(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::SearchBanded(
    const VarianceQuery& query, int top_k, const ClassFilter* filter,
    int64_t* in_band, int64_t* eligible) const {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<bool> video_matches;
  int max_matching = index_.size();
  if (filter != nullptr) {
    max_matching = 0;
    video_matches.resize(static_cast<size_t>(VideoCountLocked()));
    for (int id = 0; id < VideoCountLocked(); ++id) {
      bool ok =
          filter->Matches(catalog_[static_cast<size_t>(id)]->classification);
      video_matches[static_cast<size_t>(id)] = ok;
      if (ok) {
        max_matching +=
            static_cast<int>(catalog_[static_cast<size_t>(id)]->shots.size());
      }
    }
  }
  std::vector<QueryMatch> matches = index_.Query(query);
  if (filter != nullptr) {
    std::erase_if(matches, [&](const QueryMatch& m) {
      return !(m.entry.video_id >= 0 &&
               m.entry.video_id < VideoCountLocked() &&
               video_matches[static_cast<size_t>(m.entry.video_id)]);
    });
  }
  if (in_band != nullptr) *in_band = static_cast<int64_t>(matches.size());
  if (eligible != nullptr) *eligible = max_matching;
  if (static_cast<int>(matches.size()) > top_k) {
    matches.resize(static_cast<size_t>(top_k));
  }
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, SuggestLocked(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::SearchSimilarToShot(
    int video_id, int shot_index, int top_k) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  VDB_ASSIGN_OR_RETURN(const CatalogEntry* entry, GetEntryLocked(video_id));
  if (shot_index < 0 ||
      shot_index >= static_cast<int>(entry->features.size())) {
    return Status::NotFound(StrFormat("shot %d of video %d", shot_index,
                                      video_id));
  }
  const ShotFeatures& f = entry->features[static_cast<size_t>(shot_index)];
  VarianceQuery query;
  query.var_ba = f.var_ba;
  query.var_oa = f.var_oa;
  std::vector<QueryMatch> matches =
      index_.QueryTopK(query, top_k, video_id, shot_index);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, SuggestLocked(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

}  // namespace vdb
