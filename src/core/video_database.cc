#include "core/video_database.h"

#include "util/string_util.h"
#include "video/video_io.h"

namespace vdb {
namespace {

// Analysis stages shared by Ingest and IngestFile once the signatures
// exist: detection, features, scene tree.
Status AnalyseFromSignatures(const VideoDatabaseOptions& options,
                             CatalogEntry* entry) {
  CameraTrackingDetector detector(options.detector);
  VDB_ASSIGN_OR_RETURN(ShotDetectionResult detection,
                       detector.DetectFromSignatures(entry->signatures));
  entry->shots = std::move(detection.shots);
  entry->sbd_stats = detection.stage_stats;

  VDB_ASSIGN_OR_RETURN(entry->features,
                       ComputeAllShotFeatures(entry->signatures,
                                              entry->shots));

  SceneTreeBuilder builder(options.scene_tree);
  VDB_ASSIGN_OR_RETURN(entry->scene_tree,
                       builder.Build(entry->signatures, entry->shots));
  return Status::Ok();
}

}  // namespace

VideoDatabase::VideoDatabase(VideoDatabaseOptions options)
    : options_(options) {}

Result<int> VideoDatabase::Ingest(const Video& video) {
  auto entry = std::make_unique<CatalogEntry>();
  entry->video_id = static_cast<int>(catalog_.size());
  entry->name = video.name();
  entry->frame_count = video.frame_count();
  entry->fps = video.fps();

  // Step 1: signatures, then segmentation; Step 2: tree; Step 3: index.
  VDB_ASSIGN_OR_RETURN(entry->signatures, ComputeVideoSignatures(video));
  VDB_RETURN_IF_ERROR(AnalyseFromSignatures(options_, entry.get()));
  index_.AddVideo(entry->video_id, entry->features);

  int id = entry->video_id;
  catalog_.push_back(std::move(entry));
  return id;
}

Result<int> VideoDatabase::IngestFile(const std::string& path) {
  VDB_ASSIGN_OR_RETURN(VideoFileReader reader, VideoFileReader::Open(path));

  auto entry = std::make_unique<CatalogEntry>();
  entry->video_id = static_cast<int>(catalog_.size());
  entry->name = reader.name();
  entry->frame_count = reader.frame_count();
  entry->fps = reader.fps();

  VDB_ASSIGN_OR_RETURN(
      entry->signatures.geometry,
      ComputeAreaGeometry(reader.width(), reader.height()));
  entry->signatures.frames.reserve(
      static_cast<size_t>(reader.frame_count()));
  while (!reader.AtEnd()) {
    // One frame resident at a time: decode, reduce, discard.
    VDB_ASSIGN_OR_RETURN(Frame frame, reader.ReadNextFrame());
    VDB_ASSIGN_OR_RETURN(
        FrameSignature fs,
        ComputeFrameSignature(frame, entry->signatures.geometry));
    entry->signatures.frames.push_back(std::move(fs));
  }

  VDB_RETURN_IF_ERROR(AnalyseFromSignatures(options_, entry.get()));
  index_.AddVideo(entry->video_id, entry->features);

  int id = entry->video_id;
  catalog_.push_back(std::move(entry));
  return id;
}

Result<int> VideoDatabase::Restore(CatalogEntry entry) {
  if (entry.frame_count <= 0 ||
      entry.frame_count != static_cast<int>(entry.signatures.frames.size())) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' has inconsistent frame counts",
                  entry.name.c_str()));
  }
  if (entry.shots.size() != entry.features.size()) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' has %zu shots but %zu feature rows",
                  entry.name.c_str(), entry.shots.size(),
                  entry.features.size()));
  }
  if (entry.scene_tree.shot_count() != static_cast<int>(entry.shots.size())) {
    return Status::InvalidArgument(
        StrFormat("entry '%s' tree covers %d shots, entry has %zu",
                  entry.name.c_str(), entry.scene_tree.shot_count(),
                  entry.shots.size()));
  }
  VDB_RETURN_IF_ERROR(entry.scene_tree.Validate());

  auto stored = std::make_unique<CatalogEntry>(std::move(entry));
  stored->video_id = static_cast<int>(catalog_.size());
  index_.AddVideo(stored->video_id, stored->features);
  int id = stored->video_id;
  catalog_.push_back(std::move(stored));
  return id;
}

Result<const CatalogEntry*> VideoDatabase::GetEntry(int video_id) const {
  if (video_id < 0 || video_id >= video_count()) {
    return Status::NotFound(StrFormat("video id %d (have %d videos)",
                                      video_id, video_count()));
  }
  return catalog_[static_cast<size_t>(video_id)].get();
}

Status VideoDatabase::SetClassification(
    int video_id, VideoClassification classification) {
  if (video_id < 0 || video_id >= video_count()) {
    return Status::NotFound(StrFormat("video id %d (have %d videos)",
                                      video_id, video_count()));
  }
  catalog_[static_cast<size_t>(video_id)]->classification =
      std::move(classification);
  return Status::Ok();
}

Result<BrowsingSuggestion> VideoDatabase::Suggest(
    const QueryMatch& match) const {
  VDB_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       GetEntry(match.entry.video_id));
  BrowsingSuggestion suggestion;
  suggestion.match = match;
  suggestion.video_name = entry->name;
  int node_id = entry->scene_tree.LargestSceneForShot(match.entry.shot_index);
  if (node_id >= 0) {
    const SceneNode& node = entry->scene_tree.node(node_id);
    suggestion.scene_node = node_id;
    suggestion.scene_label = node.Label();
    suggestion.representative_frame = node.representative_frame;
  } else {
    // The shot names no node (its leaf was out-named); fall back to the
    // leaf itself.
    const SceneNode& leaf = entry->scene_tree.node(
        entry->scene_tree.LeafForShot(match.entry.shot_index));
    suggestion.scene_node = leaf.id;
    suggestion.scene_label = leaf.Label();
    suggestion.representative_frame = leaf.representative_frame;
  }
  return suggestion;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::Search(
    const VarianceQuery& query, int top_k) const {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  std::vector<QueryMatch> matches = index_.QueryTopK(query, top_k);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, Suggest(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::SearchWithinClass(
    const VarianceQuery& query, int top_k, const ClassFilter& filter) const {
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be positive");
  }
  // How many indexed shots can match the filter at all (stops the band
  // widening early when the class is small).
  int max_matching = 0;
  std::vector<bool> video_matches(static_cast<size_t>(video_count()));
  for (int id = 0; id < video_count(); ++id) {
    bool ok = filter.Matches(catalog_[static_cast<size_t>(id)]->classification);
    video_matches[static_cast<size_t>(id)] = ok;
    if (ok) {
      max_matching += static_cast<int>(
          catalog_[static_cast<size_t>(id)]->shots.size());
    }
  }
  std::vector<QueryMatch> matches = index_.QueryTopKWhere(
      query, top_k,
      [&](const IndexEntry& e) {
        return e.video_id >= 0 && e.video_id < video_count() &&
               video_matches[static_cast<size_t>(e.video_id)];
      },
      max_matching);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, Suggest(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

Result<std::vector<BrowsingSuggestion>> VideoDatabase::SearchSimilarToShot(
    int video_id, int shot_index, int top_k) const {
  VDB_ASSIGN_OR_RETURN(const CatalogEntry* entry, GetEntry(video_id));
  if (shot_index < 0 ||
      shot_index >= static_cast<int>(entry->features.size())) {
    return Status::NotFound(StrFormat("shot %d of video %d", shot_index,
                                      video_id));
  }
  const ShotFeatures& f = entry->features[static_cast<size_t>(shot_index)];
  VarianceQuery query;
  query.var_ba = f.var_ba;
  query.var_oa = f.var_oa;
  std::vector<QueryMatch> matches =
      index_.QueryTopK(query, top_k, video_id, shot_index);
  std::vector<BrowsingSuggestion> suggestions;
  suggestions.reserve(matches.size());
  for (const QueryMatch& m : matches) {
    VDB_ASSIGN_OR_RETURN(BrowsingSuggestion s, Suggest(m));
    suggestions.push_back(std::move(s));
  }
  return suggestions;
}

}  // namespace vdb
