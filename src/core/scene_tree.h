#ifndef VDB_CORE_SCENE_TREE_H_
#define VDB_CORE_SCENE_TREE_H_

#include <string>
#include <vector>

#include "core/extractor.h"
#include "core/shot.h"
#include "util/result.h"

namespace vdb {

// Options for the RELATIONSHIP test and the tree construction (Section 3.1).
struct SceneTreeOptions {
  // Two shots are related when some pair of their background signs differs
  // by less than this percentage of the colour range (Equation 2).
  double relationship_threshold_pct = 10.0;

  // The paper's RELATIONSHIP walks the two shots diagonally: frame i of A
  // against frame (i mod |B|) of B. When false, every (i, j) pair is
  // compared (exhaustive O(|A| x |B|) variant) — used by the ablation bench.
  bool diagonal_scan = true;
};

// One node of the browsing hierarchy. Leaves (level 0) correspond to shots;
// internal nodes are the paper's "empty nodes", later named after the child
// whose shot has the longest run of identical background signs.
struct SceneNode {
  int id = -1;
  int parent = -1;
  std::vector<int> children;

  // Level in the tree: 0 for leaves; an internal node sits one above its
  // highest child.
  int level = 0;

  // The shot this node is named after (SN_m^c). Always set after Build():
  // equal to the own shot for leaves, inherited for internal nodes.
  int shot_index = -1;

  // Global frame index of the node's representative frame.
  int representative_frame = -1;

  bool IsLeaf() const { return children.empty(); }

  // "SN_6^2"-style label (1-based shot number, as in the paper's figures).
  std::string Label() const;
};

// The scene tree of one video (Section 3).
class SceneTree {
 public:
  SceneTree() = default;

  // Reassembles a tree from serialized parts (catalog restore). Node ids
  // must equal their indices; the result is validated before returning.
  static Result<SceneTree> FromParts(std::vector<SceneNode> nodes, int root,
                                     int shot_count);

  int root() const { return root_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }
  int shot_count() const { return shot_count_; }

  const SceneNode& node(int id) const;
  const std::vector<SceneNode>& nodes() const { return nodes_; }

  // Leaf node id for a shot index.
  int LeafForShot(int shot_index) const;

  // Height of the tree (a single leaf has height 0).
  int Height() const;

  // The highest-level node named after `shot_index`, or -1. This is the
  // "largest scene sharing the representative frame" used when answering
  // index queries (Section 4.2).
  int LargestSceneForShot(int shot_index) const;

  // Multi-line ASCII rendering (root first), e.g. for the Figure 7 bench.
  std::string ToAscii() const;

  // Structural invariants: every shot has exactly one leaf, children/parent
  // links are mutually consistent, levels increase upward, every node is
  // named and carries a representative frame. Returns an error describing
  // the first violation.
  Status Validate() const;

 private:
  friend class SceneTreeBuilder;
  friend class SceneTreeAccumulator;

  std::vector<SceneNode> nodes_;
  int root_ = -1;
  int shot_count_ = 0;
};

// The RELATIONSHIP algorithm (Section 3.1): returns true when shots A and B
// share similar backgrounds. Exposed for tests and benches.
bool ShotsRelated(const VideoSignatures& signatures, const Shot& a,
                  const Shot& b, const SceneTreeOptions& options);

// Incremental scene-tree construction for the streaming ingest pipeline:
// shots are registered one at a time as they close, and the Section-3.1
// relation scan for shot i runs immediately (it only ever looks backward,
// at shots 0..i-1, so streaming changes nothing about the decisions).
//
// The only thing that cannot be fixed until the end is the node-id layout:
// the batch builder creates every leaf before any empty node, so leaves
// own ids 0..n-1. The accumulator therefore keeps provisional ids
// (creation order, leaves and empties interleaved) and Finalize() renumbers
// — leaf of shot s → s, empty nodes in creation order → n, n+1, ... —
// which reproduces the batch layout exactly, because the batch builder
// also numbers its empties in scan order. Finalize then attaches orphans
// to the root, computes levels, and names nodes, and is const and
// repeatable: the pipeline calls it at every checkpoint to publish a
// valid tree over the shots so far, then keeps adding shots.
//
// SceneTreeBuilder::Build is a thin wrapper (AddShot in a loop, then
// Finalize), so streaming and batch trees are identical by construction.
//
// Only sign_ba is read from `signatures`, so a signs-only VideoSignatures
// (empty signature lines, as restored from the catalog codec) works.
class SceneTreeAccumulator {
 public:
  explicit SceneTreeAccumulator(SceneTreeOptions options = SceneTreeOptions());

  // Registers the next shot (its index is the number of AddShot calls made
  // so far) and places its leaf in the provisional forest. `signatures`
  // must cover frames through shot.end_frame.
  Status AddShot(const VideoSignatures& signatures, const Shot& shot);

  int shot_count() const { return static_cast<int>(shots_.size()); }
  const std::vector<Shot>& shots() const { return shots_; }

  // Builds the finished tree over the shots added so far: renumber,
  // orphans → root, levels, naming, representative frames, validation.
  Result<SceneTree> Finalize(const VideoSignatures& signatures) const;

 private:
  // A node of the provisional forest; ids are indices into nodes_.
  struct ProvNode {
    int parent = -1;
    std::vector<int> children;
    int shot_index = -1;  // >= 0 for leaves, -1 for empty nodes
    bool IsLeaf() const { return shot_index >= 0; }
  };

  int NewLeaf(int shot_index);
  int NewInternal();
  void Connect(int child, int parent);
  int RootOf(int id) const;
  int Lca(int a, int b) const;

  SceneTreeOptions options_;
  std::vector<ProvNode> nodes_;
  std::vector<int> leaf_of_;  // shot index -> provisional id
  std::vector<Shot> shots_;
};

// Builds scene trees from detected shots.
class SceneTreeBuilder {
 public:
  explicit SceneTreeBuilder(SceneTreeOptions options = SceneTreeOptions());

  // Runs the full Section-3.1 procedure: leaf creation, relation scan,
  // grouping, root creation, naming, and representative-frame selection.
  // A replay of SceneTreeAccumulator over all shots.
  Result<SceneTree> Build(const VideoSignatures& signatures,
                          const std::vector<Shot>& shots) const;

 private:
  SceneTreeOptions options_;
};

// Longest run of consecutive frames with identical Sign^BA within the shot;
// returns the 0-based global frame index of the first frame of that run
// (earliest run wins ties) and its length. This implements the
// representative-frame rule of Table 2.
struct RepetitiveRun {
  int start_frame = -1;
  int length = 0;
};
Result<RepetitiveRun> FindMostRepetitiveRun(const VideoSignatures& signatures,
                                            const Shot& shot);

// The `count` most repetitive runs of a shot, ordered by descending length
// (earlier run wins ties). Returns fewer when the shot has fewer runs.
Result<std::vector<RepetitiveRun>> FindTopRepetitiveRuns(
    const VideoSignatures& signatures, const Shot& shot, int count);

// The paper's g(s) option (Section 3.1): instead of one representative
// frame per scene node, return the `count` most repetitive frames across
// every shot in the node's subtree — larger scenes get richer summaries.
// Frames are global indices, ordered by descending run length.
Result<std::vector<int>> SceneRepresentativeFrames(
    const SceneTree& tree, const VideoSignatures& signatures,
    const std::vector<Shot>& shots, int node_id, int count);

}  // namespace vdb

#endif  // VDB_CORE_SCENE_TREE_H_
