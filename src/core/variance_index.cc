#include "core/variance_index.h"

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <cmath>

namespace vdb {
namespace {

double QueryDv(const VarianceQuery& q) {
  return std::sqrt(q.var_ba) - std::sqrt(q.var_oa);
}

double Distance(const VarianceQuery& q, const IndexEntry& e) {
  double d_dv = e.Dv() - QueryDv(q);
  double d_ba = e.SqrtVarBa() - std::sqrt(q.var_ba);
  return std::sqrt(d_dv * d_dv + d_ba * d_ba);
}

// Total order on matches: distance, then (video_id, shot_index). The id
// tie-break matters beyond aesthetics — a sharded deployment merges
// per-shard top-k lists and truncates, and that merge is only reproducible
// against a single-node answer if ties resolve the same way everywhere.
bool MatchLess(const QueryMatch& a, const QueryMatch& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  if (a.entry.video_id != b.entry.video_id) {
    return a.entry.video_id < b.entry.video_id;
  }
  return a.entry.shot_index < b.entry.shot_index;
}

}  // namespace

VarianceIndex::VarianceIndex(VarianceIndex&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.sort_mu_);
  entries_ = std::move(other.entries_);
  sorted_ = other.sorted_;
}

VarianceIndex& VarianceIndex::operator=(VarianceIndex&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(sort_mu_, other.sort_mu_);
    entries_ = std::move(other.entries_);
    sorted_ = other.sorted_;
  }
  return *this;
}

double IndexEntry::SqrtVarBa() const { return std::sqrt(var_ba); }

double IndexEntry::Dv() const {
  return std::sqrt(var_ba) - std::sqrt(var_oa);
}

void VarianceIndex::Add(const IndexEntry& entry) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  entries_.push_back(entry);
  sorted_ = false;
}

void VarianceIndex::AddVideo(int video_id,
                             const std::vector<ShotFeatures>& features) {
  std::lock_guard<std::mutex> lock(sort_mu_);
  size_t mid = entries_.size();
  for (size_t i = 0; i < features.size(); ++i) {
    entries_.push_back(IndexEntry{video_id, static_cast<int>(i),
                                  features[i].var_ba, features[i].var_oa});
  }
  if (!sorted_) return;  // a lazy full sort is already owed
  // Incremental per-video update: stably sort just the new rows and merge
  // them in. stable_sort(old ++ new) with a sorted old prefix is exactly
  // inplace_merge(old, stable_sort(new)) — both keep equal-D^v rows in
  // insertion order with old before new — so the table is bit-identical
  // to a full rebuild (asserted in variance_index_test) at O(m log m + n)
  // per video instead of O((n+m) log (n+m)).
  auto by_dv = [](const IndexEntry& a, const IndexEntry& b) {
    return a.Dv() < b.Dv();
  };
  std::stable_sort(entries_.begin() + static_cast<ptrdiff_t>(mid),
                   entries_.end(), by_dv);
  std::inplace_merge(entries_.begin(),
                     entries_.begin() + static_cast<ptrdiff_t>(mid),
                     entries_.end(), by_dv);
}

void VarianceIndex::EnsureSorted() const {
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (sorted_) return;
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const IndexEntry& a, const IndexEntry& b) {
                     return a.Dv() < b.Dv();
                   });
  sorted_ = true;
}

std::vector<QueryMatch> VarianceIndex::Query(
    const VarianceQuery& query) const {
  EnsureSorted();
  double dv = QueryDv(query);
  double lo = dv - query.alpha;
  double hi = dv + query.alpha;
  auto begin = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const IndexEntry& e, double v) { return e.Dv() < v; });
  auto end = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](double v, const IndexEntry& e) { return v < e.Dv(); });

  double sqrt_ba = std::sqrt(query.var_ba);
  std::vector<QueryMatch> matches;
  for (auto it = begin; it != end; ++it) {
    if (it->SqrtVarBa() >= sqrt_ba - query.beta &&
        it->SqrtVarBa() <= sqrt_ba + query.beta) {
      matches.push_back(QueryMatch{*it, Distance(query, *it)});
    }
  }
  std::sort(matches.begin(), matches.end(), MatchLess);
  return matches;
}

std::vector<QueryMatch> VarianceIndex::QueryLinear(
    const VarianceQuery& query) const {
  double dv = QueryDv(query);
  double sqrt_ba = std::sqrt(query.var_ba);
  std::vector<QueryMatch> matches;
  for (const IndexEntry& e : entries_) {
    if (e.Dv() >= dv - query.alpha && e.Dv() <= dv + query.alpha &&
        e.SqrtVarBa() >= sqrt_ba - query.beta &&
        e.SqrtVarBa() <= sqrt_ba + query.beta) {
      matches.push_back(QueryMatch{e, Distance(query, e)});
    }
  }
  std::sort(matches.begin(), matches.end(), MatchLess);
  return matches;
}

std::vector<QueryMatch> VarianceIndex::QueryTopKWhere(
    const VarianceQuery& query, int k,
    const std::function<bool(const IndexEntry&)>& keep,
    int max_matching) const {
  VarianceQuery widened = query;
  std::vector<QueryMatch> matches;
  for (int attempt = 0; attempt < 64; ++attempt) {
    matches = Query(widened);
    std::erase_if(matches,
                  [&](const QueryMatch& m) { return !keep(m.entry); });
    if (static_cast<int>(matches.size()) >= k ||
        static_cast<int>(matches.size()) >= max_matching) {
      break;
    }
    widened.alpha *= 2.0;
    widened.beta *= 2.0;
  }
  if (static_cast<int>(matches.size()) > k) {
    matches.resize(static_cast<size_t>(k));
  }
  return matches;
}

std::vector<QueryMatch> VarianceIndex::QueryTopK(const VarianceQuery& query,
                                                 int k, int exclude_video,
                                                 int exclude_shot) const {
  int max_possible = exclude_video >= 0 ? size() - 1 : size();
  return QueryTopKWhere(
      query, k,
      [&](const IndexEntry& e) {
        return !(e.video_id == exclude_video &&
                 e.shot_index == exclude_shot);
      },
      max_possible);
}

}  // namespace vdb
