#ifndef VDB_CORE_KERNELS_H_
#define VDB_CORE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "core/extractor.h"
#include "core/geometry.h"
#include "core/pyramid.h"
#include "util/result.h"
#include "video/frame.h"

namespace vdb {

// Allocation-free, cache-friendly kernels for the signature hot path.
//
// Every downstream technique (SBD, scene trees, variance indexing) consumes
// the per-frame Figure-3 reduction, so this is the one path whose cost
// multiplies by every ingested frame. The reference implementation
// (pyramid.h + ComputeFrameSignatureReference below) materialises two
// intermediate Frames per area, gathers every column into a fresh
// Signature and reduces it with scalar double arithmetic — ~10^3 heap
// allocations per frame. The kernels here produce **byte-identical**
// output from flat reused buffers:
//
//  * PyramidWorkspace owns all scratch, sized once per frame geometry;
//    in steady state (same geometry, warmed output vector) a frame is
//    reduced with zero heap allocations.
//  * Area extraction is fused: the TBA rotation (geometry.h) and the
//    nearest-neighbour resample collapse into precomputed gather maps that
//    read the source Frame exactly once per output pixel, straight into
//    planar (SoA) channel buffers — no intermediate Frame objects.
//  * The [1 4 6 4 1]/16 reduction runs in fixed point over contiguous
//    rows: out = (p0 + 4*p1 + 6*p2 + 4*p3 + p4 + 8) >> 4. This is exact,
//    not approximate — every kernel weight is a multiple of 2^-4, so the
//    reference double-precision sum is computed without rounding error and
//    equals S/16 for the integer S above; std::lround's round-half-up then
//    coincides with (S + 8) >> 4 (both operands are non-negative and the
//    result never exceeds 255). The whole image reduces one *level* at a
//    time by sweeping rows (not gathering columns), so loads are
//    contiguous and the inner loops vectorize.
//  * The hot loops (row reduce, deinterleave, per-shift match mask)
//    dispatch at runtime to hand-written AVX2 / SSE4.1 / scalar variants
//    (core/kernels/simd.h: CPUID probe once, per-kernel function pointers,
//    VDB_SIMD / SetSimdLevel override). Every level computes identical
//    fixed-point integer math, so the output bytes never depend on the
//    selected level — only the schedule does.
//
// The bit-exactness contract is enforced by kernels_test (property tests
// over randomized geometries plus all 22 Table-5 presets end to end), by
// kernels_simd_test (the same battery forced onto every available dispatch
// level, plus misaligned and tail-width cases), and by the fast
// `ctest -L kernels` and per-level `simd` legs of scripts/check.sh.

// One reduction level over planar rows: `in` holds `in_rows` rows of
// `width` bytes each; writes (in_rows - 3) / 2 rows to `out`. Requires
// in_rows to be a size-set element >= 5; in and out must not overlap.
// Exposed for tests and benches; production code uses PyramidWorkspace.
void ReduceRowsOnce(const uint8_t* in, int width, int in_rows, uint8_t* out);

// Per-thread scratch for the optimized signature path. Not thread-safe:
// give each worker its own instance (a workspace is a few tens of KB).
// Buffers grow to fit the largest geometry seen and are never shrunk, so
// ingesting a homogeneous corpus settles into zero allocations per frame.
class PyramidWorkspace {
 public:
  PyramidWorkspace() = default;
  PyramidWorkspace(const PyramidWorkspace&) = delete;
  PyramidWorkspace& operator=(const PyramidWorkspace&) = delete;

  // Fills *out with the Figure-3 reduction of `frame` under `geom`,
  // byte-identical to ComputeFrameSignatureReference. Reuses out's
  // signature_ba storage when its capacity suffices; performs no other
  // heap allocation once the workspace has seen this geometry.
  Status ComputeInto(const Frame& frame, const AreaGeometry& geom,
                     FrameSignature* out);

  // Convenience wrapper returning a fresh FrameSignature.
  Result<FrameSignature> Compute(const Frame& frame, const AreaGeometry& geom);

  // Number of times Prepare() re-derived maps and (re)grew buffers — one
  // per distinct geometry change, constant in steady state. Test hook for
  // the zero-allocation contract.
  long prepare_count() const { return prepare_count_; }

  // Total scratch bytes currently reserved across all internal buffers.
  size_t scratch_bytes() const;

 private:
  // (Re)builds gather maps and sizes buffers for `geom`; no-op when the
  // geometry matches the cached one.
  void Prepare(const AreaGeometry& geom);

  // Gathers an area into the planar buffers (w rows of l bytes for the
  // TBA, h rows of b for the FOA) and reduces it vertically level by
  // level, leaving a single row of `width` bytes per channel; returns
  // pointers to those rows via the members below.
  void GatherTba(const Frame& frame);
  void GatherFoa(const Frame& frame);
  void ReducePlanesToLine(int width, int rows);

  // Reduces the single `width`-byte row left by ReducePlanesToLine down to
  // one pixel (in-place horizontal sweeps, same per-level rounding).
  PixelRGB ReduceLineRowToPixel(int width);

  // Cached geometry (all fields participate: the estimates drive the
  // gather maps, the snapped values the buffer sizes).
  AreaGeometry geom_;
  bool has_geom_ = false;
  long prepare_count_ = 0;

  // Fused gather maps. src_index(x, y) = base[x] + stride[x] * row_of[y]
  // covers all three TBA strip segments (rotated left column, top bar,
  // rotated right column) and, for the FOA, the crop offset.
  std::vector<int> tba_base_, tba_stride_, tba_row_;
  std::vector<int> foa_base_, foa_row_;

  // Planar channel scratch: ping/pong pairs so a reduction level never
  // reads the rows it writes.
  std::vector<uint8_t> ping_r_, ping_g_, ping_b_;
  std::vector<uint8_t> pong_r_, pong_g_, pong_b_;
  // After ReducePlanesToLine: the buffers holding the final row.
  const uint8_t* line_r_ = nullptr;
  const uint8_t* line_g_ = nullptr;
  const uint8_t* line_b_ = nullptr;
  // Scratch row for the horizontal sign reduction.
  std::vector<uint8_t> sign_r_, sign_g_, sign_b_;
};

// The retained reference path: extract + resample via intermediate Frames,
// reduce columns with double arithmetic (pyramid.h). The optimized path is
// tested byte-identical against this; benches report the speedup over it.
Result<FrameSignature> ComputeFrameSignatureReference(const Frame& frame,
                                                      const AreaGeometry& geom);

// Optimized Stage-3 shift match: identical result to
// BestShiftMatchScoreReference (the score is the order-independent maximum
// run over all shifts), but shifts are visited in decreasing-overlap order
// and pruned once the remaining overlap cannot beat the best run, the
// per-shift match mask is precomputed into a flat buffer the compiler can
// vectorize, and the run scan bails when the unseen suffix is too short to
// matter. Uses a per-thread mask buffer: zero allocations in steady state.
double BestShiftMatchScoreKernel(const Signature& a, const Signature& b,
                                 int tolerance);

// The original O(n^2) scalar loop, retained for equivalence tests.
double BestShiftMatchScoreReference(const Signature& a, const Signature& b,
                                    int tolerance);

}  // namespace vdb

#endif  // VDB_CORE_KERNELS_H_
