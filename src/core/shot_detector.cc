#include "core/shot_detector.h"

#include <algorithm>

#include "core/kernels.h"
#include "util/string_util.h"

namespace vdb {
namespace {

// Percentage (of the 256-value colour range) difference between two signs.
double SignDiffPct(const PixelRGB& a, const PixelRGB& b) {
  return MaxChannelDifference(a, b) / 256.0 * 100.0;
}

bool PixelsMatch(const PixelRGB& a, const PixelRGB& b, int tolerance) {
  return MaxChannelDifference(a, b) <= tolerance;
}

}  // namespace

double BestShiftMatchScore(const Signature& a, const Signature& b,
                           int tolerance) {
  // Masked, overlap-pruned kernel; identical score to the original loop,
  // which survives as BestShiftMatchScoreReference (core/kernels.h).
  return BestShiftMatchScoreKernel(a, b, tolerance);
}

CameraTrackingDetector::CameraTrackingDetector(CameraTrackingOptions options)
    : options_(options) {}

PairDecision CameraTrackingDetector::ComparePair(
    const FrameSignature& a, const FrameSignature& b) const {
  PairDecision decision;

  // Stage 1: background signs nearly identical -> same shot.
  if (SignDiffPct(a.sign_ba, b.sign_ba) <= options_.stage1_sign_diff_pct) {
    decision.same_shot = true;
    decision.stage = SbdStage::kStage1SameShot;
    return decision;
  }

  int tolerance =
      static_cast<int>(options_.match_tolerance_pct / 100.0 * 256.0);

  // Stage 2: aligned signature comparison.
  if (a.signature_ba.size() == b.signature_ba.size() &&
      !a.signature_ba.empty()) {
    size_t matches = 0;
    for (size_t i = 0; i < a.signature_ba.size(); ++i) {
      if (PixelsMatch(a.signature_ba[i], b.signature_ba[i], tolerance)) {
        ++matches;
      }
    }
    double fraction =
        static_cast<double>(matches) / static_cast<double>(a.signature_ba.size());
    if (fraction >= options_.stage2_match_fraction) {
      decision.same_shot = true;
      decision.stage = SbdStage::kStage2SameShot;
      return decision;
    }
  }

  // Stage 3: track the background by shifting the signatures.
  decision.stage3_score =
      BestShiftMatchScore(a.signature_ba, b.signature_ba, tolerance);
  if (decision.stage3_score >= options_.stage3_run_fraction) {
    decision.same_shot = true;
    decision.stage = SbdStage::kStage3SameShot;
  } else {
    decision.same_shot = false;
    decision.stage = SbdStage::kStage3Boundary;
  }
  return decision;
}

Result<ShotDetectionResult> CameraTrackingDetector::DetectFromSignatures(
    const VideoSignatures& signatures) const {
  if (signatures.frames.empty()) {
    return Status::InvalidArgument("no frame signatures");
  }
  // Batch detection is the streaming detector replayed over the whole
  // clip: one code path, so the two cannot drift apart.
  StreamingShotDetector stream(options_);
  std::vector<StreamingShotDetector::ClosedShot> closed;
  for (const FrameSignature& frame : signatures.frames) {
    stream.PushFrame(frame, &closed);
  }
  stream.Finish(&closed);

  ShotDetectionResult result;
  result.stage_stats = stream.stage_stats();
  result.shots.reserve(closed.size());
  for (const StreamingShotDetector::ClosedShot& c : closed) {
    result.shots.push_back(c.shot);
  }
  result.boundaries = BoundariesFromShots(result.shots);
  return result;
}

StreamingShotDetector::StreamingShotDetector(CameraTrackingOptions options)
    : pair_(options) {
  k_ = std::max(2, options.gradual_window);
  release_lag_ = options.detect_gradual ? k_ : 0;
  if (options.detect_gradual) {
    ring_.resize(static_cast<size_t>(k_) + 1);
  }
}

Status StreamingShotDetector::ResumeAt(int next_frame,
                                       const SbdStageStats& stats) {
  if (pair_.options().detect_gradual) {
    return Status::InvalidArgument(
        "ResumeAt with detect_gradual: the dissolve window needs signature "
        "history that checkpoints do not persist");
  }
  if (next_frame_ != 0 || finished_) {
    return Status::FailedPrecondition("ResumeAt on a used detector");
  }
  if (next_frame <= 0) {
    return Status::InvalidArgument("ResumeAt needs a positive boundary");
  }
  next_frame_ = next_frame;
  shot_start_ = next_frame;
  last_kept_ = next_frame;
  have_last_kept_ = true;
  stats_ = stats;
  return Status::Ok();
}

void StreamingShotDetector::PushFrame(const FrameSignature& frame,
                                      std::vector<ClosedShot>* closed) {
  const CameraTrackingOptions& opts = pair_.options();
  const int f = next_frame_++;

  if (opts.detect_gradual) {
    ring_[static_cast<size_t>(f % (k_ + 1))] = frame;
  }

  if (have_prev_) {
    PairDecision d = pair_.ComparePair(prev_, frame);
    switch (d.stage) {
      case SbdStage::kStage1SameShot:
        ++stats_.stage1_same;
        break;
      case SbdStage::kStage2SameShot:
        ++stats_.stage2_same;
        break;
      case SbdStage::kStage3SameShot:
        ++stats_.stage3_same;
        break;
      case SbdStage::kStage3Boundary:
        ++stats_.stage3_boundary;
        break;
    }
    if (!d.same_shot) {
      if (opts.detect_gradual) pw_all_.push_back(f);
      pw_pending_.push_back(f);
    }
  }
  prev_ = frame;
  have_prev_ = true;

  if (opts.detect_gradual && f >= k_) {
    // Window [f-k, f]: the drift and the pan test are both pure functions
    // of the window's endpoint signatures, so they are evaluated now,
    // while the ring still holds frame f-k. Whether the candidate
    // survives (no hard cut within k of its boundary, spacing from the
    // previous accepted dissolve) is only knowable once the pairwise
    // decisions through boundary+k exist — hence the candidate queue.
    double threshold = opts.gradual_total_pct / 100.0 * 256.0;
    int tolerance = static_cast<int>(opts.match_tolerance_pct / 100.0 * 256.0);
    const FrameSignature& oldest =
        ring_[static_cast<size_t>((f - k_) % (k_ + 1))];
    double drift = MaxChannelDifference(frame.sign_ba, oldest.sign_ba);
    if (drift >= threshold) {
      GradualCandidate c;
      c.t = f;
      c.boundary = f - k_ / 2;
      // A pan also drifts the sign over k frames; but a pan's background
      // is the old one shifted, so signature shift-matching across the
      // window succeeds. A dissolve mixes two scenes — no shift explains
      // the pair.
      c.pans = BestShiftMatchScore(oldest.signature_ba, frame.signature_ba,
                                   tolerance) >= opts.stage3_run_fraction;
      candidates_.push_back(c);
    }
    // Settle candidates whose suppression window [boundary-k, boundary+k]
    // is now fully inside the decided pairwise prefix (boundary+k <= f).
    while (!candidates_.empty() && candidates_.front().boundary + k_ <= f) {
      SettleCandidate(candidates_.front());
      candidates_.pop_front();
    }
  }

  ReleaseThrough(f - release_lag_, closed);
}

void StreamingShotDetector::Finish(std::vector<ClosedShot>* closed) {
  if (finished_) return;
  finished_ = true;
  // End of stream: every pairwise decision exists, so the remaining
  // candidates settle and every held boundary is released.
  while (!candidates_.empty()) {
    SettleCandidate(candidates_.front());
    candidates_.pop_front();
  }
  ReleaseThrough(next_frame_, closed);
  if (next_frame_ > shot_start_) {
    closed->push_back(ClosedShot{Shot{shot_start_, next_frame_ - 1}, stats_});
  }
}

void StreamingShotDetector::SettleCandidate(const GradualCandidate& c) {
  // Suppressed by any hard cut within k of the would-be boundary. pw_all_
  // is ascending, so one lower_bound finds the closest cut at or above
  // boundary-k.
  auto it = std::lower_bound(pw_all_.begin(), pw_all_.end(), c.boundary - k_);
  if (it != pw_all_.end() && *it <= c.boundary + k_) return;
  if (have_gr_last_ && c.boundary - gr_last_ <= 2 * k_) return;
  if (c.pans) return;
  gr_last_ = c.boundary;
  have_gr_last_ = true;
  gr_pending_.push_back(c.boundary);
}

void StreamingShotDetector::ReleaseThrough(int watermark,
                                           std::vector<ClosedShot>* closed) {
  // Merge the two ascending pending streams in boundary order — exactly
  // the sorted union the batch algorithm feeds its min-shot merge.
  for (;;) {
    bool pw_ready = !pw_pending_.empty() && pw_pending_.front() <= watermark;
    bool gr_ready = !gr_pending_.empty() && gr_pending_.front() <= watermark;
    if (!pw_ready && !gr_ready) break;
    int b;
    if (pw_ready && (!gr_ready || pw_pending_.front() < gr_pending_.front())) {
      b = pw_pending_.front();
      pw_pending_.pop_front();
    } else {
      b = gr_pending_.front();
      gr_pending_.pop_front();
    }
    KeepOrMergeBoundary(b, closed);
  }
}

void StreamingShotDetector::KeepOrMergeBoundary(int b,
                                                std::vector<ClosedShot>* closed) {
  // Merge shots shorter than min_shot_frames into their successor: a
  // boundary that opens a too-short shot is dropped, keeping the earlier
  // boundary (flash frames then sit inside a longer shot).
  int min = pair_.options().min_shot_frames;
  if (have_last_kept_ ? (b - last_kept_ < min) : (b < min)) return;
  closed->push_back(ClosedShot{Shot{shot_start_, b - 1}, stats_});
  shot_start_ = b;
  last_kept_ = b;
  have_last_kept_ = true;
}

Result<ShotDetectionResult> CameraTrackingDetector::Detect(
    const Video& video) const {
  VDB_ASSIGN_OR_RETURN(VideoSignatures sigs, ComputeVideoSignatures(video));
  return DetectFromSignatures(sigs);
}

}  // namespace vdb
