#include "core/shot_detector.h"

#include <algorithm>

#include "util/string_util.h"

namespace vdb {
namespace {

// Percentage (of the 256-value colour range) difference between two signs.
double SignDiffPct(const PixelRGB& a, const PixelRGB& b) {
  return MaxChannelDifference(a, b) / 256.0 * 100.0;
}

bool PixelsMatch(const PixelRGB& a, const PixelRGB& b, int tolerance) {
  return MaxChannelDifference(a, b) <= tolerance;
}

}  // namespace

double BestShiftMatchScore(const Signature& a, const Signature& b,
                           int tolerance) {
  VDB_CHECK(a.size() == b.size()) << "signature lengths differ";
  int n = static_cast<int>(a.size());
  if (n == 0) return 0.0;

  int best_run = 0;
  // Shift s in (-n, n): b is displaced by s relative to a; the overlap is
  // a[max(0,s) .. n-1+min(0,s)] against b[i - s].
  for (int s = -(n - 1); s <= n - 1; ++s) {
    int lo = std::max(0, s);
    int hi = std::min(n, n + s);
    int run = 0;
    for (int i = lo; i < hi; ++i) {
      if (PixelsMatch(a[static_cast<size_t>(i)],
                      b[static_cast<size_t>(i - s)], tolerance)) {
        ++run;
        best_run = std::max(best_run, run);
      } else {
        run = 0;
      }
    }
    if (best_run == n) break;  // cannot improve
  }
  return static_cast<double>(best_run) / static_cast<double>(n);
}

CameraTrackingDetector::CameraTrackingDetector(CameraTrackingOptions options)
    : options_(options) {}

PairDecision CameraTrackingDetector::ComparePair(
    const FrameSignature& a, const FrameSignature& b) const {
  PairDecision decision;

  // Stage 1: background signs nearly identical -> same shot.
  if (SignDiffPct(a.sign_ba, b.sign_ba) <= options_.stage1_sign_diff_pct) {
    decision.same_shot = true;
    decision.stage = SbdStage::kStage1SameShot;
    return decision;
  }

  int tolerance =
      static_cast<int>(options_.match_tolerance_pct / 100.0 * 256.0);

  // Stage 2: aligned signature comparison.
  if (a.signature_ba.size() == b.signature_ba.size() &&
      !a.signature_ba.empty()) {
    size_t matches = 0;
    for (size_t i = 0; i < a.signature_ba.size(); ++i) {
      if (PixelsMatch(a.signature_ba[i], b.signature_ba[i], tolerance)) {
        ++matches;
      }
    }
    double fraction =
        static_cast<double>(matches) / static_cast<double>(a.signature_ba.size());
    if (fraction >= options_.stage2_match_fraction) {
      decision.same_shot = true;
      decision.stage = SbdStage::kStage2SameShot;
      return decision;
    }
  }

  // Stage 3: track the background by shifting the signatures.
  decision.stage3_score =
      BestShiftMatchScore(a.signature_ba, b.signature_ba, tolerance);
  if (decision.stage3_score >= options_.stage3_run_fraction) {
    decision.same_shot = true;
    decision.stage = SbdStage::kStage3SameShot;
  } else {
    decision.same_shot = false;
    decision.stage = SbdStage::kStage3Boundary;
  }
  return decision;
}

Result<ShotDetectionResult> CameraTrackingDetector::DetectFromSignatures(
    const VideoSignatures& signatures) const {
  if (signatures.frames.empty()) {
    return Status::InvalidArgument("no frame signatures");
  }
  ShotDetectionResult result;

  std::vector<int> raw_boundaries;
  for (int i = 0; i + 1 < signatures.frame_count(); ++i) {
    PairDecision d = ComparePair(signatures.frames[static_cast<size_t>(i)],
                                 signatures.frames[static_cast<size_t>(i + 1)]);
    switch (d.stage) {
      case SbdStage::kStage1SameShot:
        ++result.stage_stats.stage1_same;
        break;
      case SbdStage::kStage2SameShot:
        ++result.stage_stats.stage2_same;
        break;
      case SbdStage::kStage3SameShot:
        ++result.stage_stats.stage3_same;
        break;
      case SbdStage::kStage3Boundary:
        ++result.stage_stats.stage3_boundary;
        break;
    }
    if (!d.same_shot) {
      raw_boundaries.push_back(i + 1);
    }
  }

  // Optional gradual-transition pass: a dissolve drifts the background
  // sign far over a few frames while every consecutive pair stays below
  // the cut thresholds.
  if (options_.detect_gradual) {
    int k = std::max(2, options_.gradual_window);
    double threshold = options_.gradual_total_pct / 100.0 * 256.0;
    int tolerance =
        static_cast<int>(options_.match_tolerance_pct / 100.0 * 256.0);
    auto near_existing = [&](int frame) {
      for (int b : raw_boundaries) {
        if (std::abs(b - frame) <= k) return true;
      }
      return false;
    };
    std::vector<int> gradual;
    for (int t = k; t < signatures.frame_count(); ++t) {
      double drift = MaxChannelDifference(
          signatures.frames[static_cast<size_t>(t)].sign_ba,
          signatures.frames[static_cast<size_t>(t - k)].sign_ba);
      if (drift < threshold) continue;
      int boundary = t - k / 2;
      if (near_existing(boundary) ||
          (!gradual.empty() && boundary - gradual.back() <= 2 * k)) {
        continue;
      }
      // A pan also drifts the sign over k frames; but a pan's background
      // is the old one shifted, so signature shift-matching across the
      // window succeeds. A dissolve mixes two scenes — no shift explains
      // the pair.
      double shift_score = BestShiftMatchScore(
          signatures.frames[static_cast<size_t>(t - k)].signature_ba,
          signatures.frames[static_cast<size_t>(t)].signature_ba,
          tolerance);
      if (shift_score >= options_.stage3_run_fraction) continue;
      gradual.push_back(boundary);
    }
    raw_boundaries.insert(raw_boundaries.end(), gradual.begin(),
                          gradual.end());
    std::sort(raw_boundaries.begin(), raw_boundaries.end());
  }

  // Merge shots shorter than min_shot_frames into their successor: a
  // boundary that opens a too-short shot is dropped, keeping the earlier
  // boundary (flash frames then sit inside a longer shot).
  std::vector<int> boundaries;
  for (int b : raw_boundaries) {
    if (!boundaries.empty() &&
        b - boundaries.back() < options_.min_shot_frames) {
      continue;
    }
    if (boundaries.empty() && b < options_.min_shot_frames) {
      continue;
    }
    boundaries.push_back(b);
  }

  result.boundaries = boundaries;
  result.shots = ShotsFromBoundaries(boundaries, signatures.frame_count());
  return result;
}

Result<ShotDetectionResult> CameraTrackingDetector::Detect(
    const Video& video) const {
  VDB_ASSIGN_OR_RETURN(VideoSignatures sigs, ComputeVideoSignatures(video));
  return DetectFromSignatures(sigs);
}

}  // namespace vdb
