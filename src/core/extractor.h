#ifndef VDB_CORE_EXTRACTOR_H_
#define VDB_CORE_EXTRACTOR_H_

#include <vector>

#include "core/geometry.h"
#include "core/pyramid.h"
#include "util/result.h"
#include "video/video.h"

namespace vdb {

class PyramidWorkspace;

// Per-frame reduction products used by every downstream component:
//  * signature_ba — the TBA reduced to a line of L pixels,
//  * sign_ba      — the TBA reduced to one pixel (Sign_i^BA),
//  * sign_oa      — the FOA reduced to one pixel (Sign_i^OA).
struct FrameSignature {
  Signature signature_ba;
  PixelRGB sign_ba;
  PixelRGB sign_oa;
};

// Signatures of a whole video plus the geometry they were computed with.
struct VideoSignatures {
  AreaGeometry geometry;
  std::vector<FrameSignature> frames;

  int frame_count() const { return static_cast<int>(frames.size()); }
};

// Computes the Figure-3 reduction for a single frame via the optimized
// kernel path (core/kernels.h), using a per-thread workspace. Byte-
// identical to ComputeFrameSignatureReference.
Result<FrameSignature> ComputeFrameSignature(const Frame& frame,
                                             const AreaGeometry& geom);

// Same, reusing an explicit caller-owned workspace — the form the ingest
// loops use (one workspace per worker; see core/kernels.h for the
// ownership rules).
Result<FrameSignature> ComputeFrameSignature(const Frame& frame,
                                             const AreaGeometry& geom,
                                             PyramidWorkspace* workspace);

// Computes signatures for every frame of `video`. This is the expensive,
// single pass over pixel data; everything after (SBD, scene trees,
// indexing) works on signatures and signs only.
Result<VideoSignatures> ComputeVideoSignatures(const Video& video);

// Multi-threaded variant: frames are independent, so extraction
// parallelises perfectly and the output is bit-identical to the serial
// pass (the paper's Section 6 calls for speeding segmentation up).
// `num_threads` <= 0 uses all hardware threads.
Result<VideoSignatures> ComputeVideoSignaturesParallel(const Video& video,
                                                       int num_threads = 0);

}  // namespace vdb

#endif  // VDB_CORE_EXTRACTOR_H_
