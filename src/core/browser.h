#ifndef VDB_CORE_BROWSER_H_
#define VDB_CORE_BROWSER_H_

#include <string>
#include <vector>

#include "core/scene_tree.h"
#include "core/video_database.h"
#include "util/result.h"

namespace vdb {

// A navigation cursor over one video's scene tree — the stateful half of
// the paper's browsing story ("the user can browse the appropriate scene
// trees, starting from the suggested scene nodes, to search for more
// specific scenes in the lower levels", Section 4.2).
//
// The browser never owns the catalog entry; the entry must outlive it.
class SceneBrowser {
 public:
  // Binds to an analysed video. CHECK-fails on null.
  explicit SceneBrowser(const CatalogEntry* entry);

  // Current node id / node.
  int current() const { return current_; }
  const SceneNode& CurrentNode() const;

  // Node ids from the root down to the current node.
  std::vector<int> Path() const;

  // "SN_1^3 > SN_1^2 > SN_7^1" style path string.
  std::string Breadcrumbs() const;

  // First..last frame covered by the current node's subtree (inclusive).
  Shot CoverageSpan() const;

  // The g(s) most repetitive frames summarising the current subtree.
  Result<std::vector<int>> KeyFrames(int count) const;

  // Navigation. Each returns kOutOfRange / kFailedPrecondition when the
  // move does not exist and leaves the cursor unchanged.
  Status EnterChild(int child_index);
  Status Up();
  Status NextSibling();
  Status PrevSibling();
  void Reset();  // back to the root

  // Jumps straight to a node (e.g. a query's BrowsingSuggestion).
  Status JumpTo(int node_id);

 private:
  const CatalogEntry* entry_;
  int current_;
};

}  // namespace vdb

#endif  // VDB_CORE_BROWSER_H_
