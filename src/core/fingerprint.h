#ifndef VDB_CORE_FINGERPRINT_H_
#define VDB_CORE_FINGERPRINT_H_

#include <vector>

#include "core/features.h"
#include "core/motion.h"
#include "core/variance_index.h"
#include "util/result.h"

namespace vdb {

// Extended shot descriptor — the "more discriminating" similarity model the
// paper's Section 6 calls future work. The base (Var^BA, Var^OA) pair is
// augmented with two more signature-derived cues, both free by-products of
// the camera-tracking pass:
//   * the shot's mean background sign (its dominant colour), and
//   * the classified camera motion.
// Everything still derives from the one-line signatures; the model stays
// "cost-effective" in the paper's sense.
struct ShotFingerprint {
  ShotFeatures variances;
  PixelRGB mean_sign_ba;
  CameraMotionLabel motion = CameraMotionLabel::kComplex;
};

// Computes the fingerprint of one shot from precomputed signatures.
Result<ShotFingerprint> ComputeShotFingerprint(
    const VideoSignatures& signatures, const Shot& shot,
    const MotionOptions& motion_options = MotionOptions());

Result<std::vector<ShotFingerprint>> ComputeAllShotFingerprints(
    const VideoSignatures& signatures, const std::vector<Shot>& shots,
    const MotionOptions& motion_options = MotionOptions());

// Term weights of the extended distance. With color_weight and
// motion_weight at 0 the model reduces exactly to the paper's
// (D^v, sqrt(Var^BA)) distance.
struct FingerprintWeights {
  double variance_weight = 1.0;
  // Scales the mean-colour term: max channel difference / 256 * this.
  double color_weight = 4.0;
  // Added once when the direction-agnostic motion groups differ, and half
  // when only one of the two is complex/unknown.
  double motion_weight = 1.0;
};

// Distance between two fingerprints under `weights`.
double FingerprintDistance(const ShotFingerprint& a, const ShotFingerprint& b,
                           const FingerprintWeights& weights);

// A match returned by the extended index.
struct FingerprintMatch {
  int video_id = -1;
  int shot_index = -1;
  ShotFingerprint fingerprint;
  double distance = 0.0;
};

// Exact k-nearest-neighbour index over fingerprints. Unlike the banded
// VarianceIndex this scans all entries (the extended distance has no single
// sort key); it is meant for re-ranking and for the ablation bench.
class FingerprintIndex {
 public:
  FingerprintIndex() = default;

  void Add(int video_id, int shot_index, const ShotFingerprint& fingerprint);
  void AddVideo(int video_id,
                const std::vector<ShotFingerprint>& fingerprints);

  int size() const { return static_cast<int>(entries_.size()); }

  // The k nearest fingerprints, optionally excluding one (query shot).
  std::vector<FingerprintMatch> QueryTopK(
      const ShotFingerprint& query, int k,
      const FingerprintWeights& weights = FingerprintWeights(),
      int exclude_video = -1, int exclude_shot = -1) const;

 private:
  std::vector<FingerprintMatch> entries_;
};

}  // namespace vdb

#endif  // VDB_CORE_FINGERPRINT_H_
