#ifndef VDB_CORE_PYRAMID_H_
#define VDB_CORE_PYRAMID_H_

#include <vector>

#include "util/result.h"
#include "video/frame.h"
#include "video/pixel.h"

namespace vdb {

// A signature is a single line of pixels obtained by reducing the TBA's
// columns to one pixel each (Figure 3); its length is the TBA length L.
using Signature = std::vector<PixelRGB>;

// Modified Gaussian Pyramid reduction (Burt & Adelson kernel [1 4 6 4 1]/16).
// A line of size s_j = 2*s_{j-1} + 3 reduces to size s_{j-1}: output pixel i
// is the kernel-weighted sum of input pixels 2i .. 2i+4. Sizes must come
// from the size set {1, 5, 13, 29, 61, ...} (geometry.h).
//
// These are the *reference* kernels: double-precision, one column at a
// time, allocating per step. The production hot path runs the bit-exact
// fixed-point, allocation-free equivalents in core/kernels.h; kernels_test
// holds the two paths byte-identical.

// One reduction step. Fails unless in.size() is a size-set element >= 5.
Result<Signature> ReduceLineOnce(const Signature& in);

// Repeated reduction of a size-set-sized line down to a single pixel.
Result<PixelRGB> ReduceLineToPixel(const Signature& in);

// Reduces every column of `image` (height must be a size-set element) to a
// single pixel, producing a line of image.width() pixels. This is the
// signature computation of Figure 3. Runs in O(m) for m input pixels.
Result<Signature> ReduceColumnsToLine(const Frame& image);

// Full Figure-3 pipeline for an area image whose width AND height are
// size-set elements: columns -> signature -> sign.
struct AreaReduction {
  Signature signature;
  PixelRGB sign;
};
Result<AreaReduction> ReduceArea(const Frame& image);

}  // namespace vdb

#endif  // VDB_CORE_PYRAMID_H_
