#ifndef VDB_CORE_QUANTIZED_INDEX_H_
#define VDB_CORE_QUANTIZED_INDEX_H_

#include <unordered_map>
#include <vector>

#include "core/variance_index.h"

namespace vdb {

// The paper's Section 4.2 notes that "another common way to handle inexact
// queries is to do matching on quantized data". This index implements that
// alternative: the (D^v, sqrt(Var^BA)) plane is cut into grid cells of
// side 2*alpha x 2*beta and a query returns the shots in its cell — an
// O(1) hash lookup instead of the banded scan.
//
// The trade-off (measured in bench_ablation_quantized): queries near a
// cell border miss neighbours that the banded model would return, so
// recall against the banded result drops unless neighbouring cells are
// probed too (probe_neighbors).
class QuantizedVarianceIndex {
 public:
  struct Options {
    // Cell sides; defaults mirror the paper's alpha = beta = 1 band
    // (total width 2).
    double dv_cell = 2.0;
    double ba_cell = 2.0;
    // Cost-aware neighbour probing: probe exactly the cells the query's
    // +-alpha x +-beta band overlaps — per dimension the cells from
    // floor((q - tol) / cell) to floor((q + tol) / cell) — instead of a
    // fixed 3x3 block. With the default band (tolerance 1) and cell side 2
    // that is at most 2 cells per dimension, 4 total, versus the 9 a
    // radius-1 probe reads; recall against the banded index is unchanged
    // because every cell intersecting the band is still visited.
    bool probe_neighbors = false;
  };

  QuantizedVarianceIndex();
  explicit QuantizedVarianceIndex(Options options);

  void Add(const IndexEntry& entry);
  void AddVideo(int video_id, const std::vector<ShotFeatures>& features);

  int size() const { return size_; }
  const Options& options() const { return options_; }

  // Shots whose cell matches the query's (plus the band-overlapped
  // neighbours when probe_neighbors is on), ordered by ascending distance
  // in (D^v, sqrt(Var^BA)) space. `cells_probed` (optional) reports how
  // many cell lookups the query cost.
  std::vector<QueryMatch> Query(const VarianceQuery& query,
                                int* cells_probed = nullptr) const;

  // Number of non-empty cells (diagnostics).
  int cell_count() const { return static_cast<int>(cells_.size()); }

 private:
  struct CellKey {
    long dv = 0;
    long ba = 0;
    friend bool operator==(const CellKey& a, const CellKey& b) {
      return a.dv == b.dv && a.ba == b.ba;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      return static_cast<size_t>(k.dv) * 0x9e3779b97f4a7c15ULL +
             static_cast<size_t>(k.ba);
    }
  };

  CellKey KeyFor(double dv, double sqrt_ba) const;

  Options options_;
  std::unordered_map<CellKey, std::vector<IndexEntry>, CellKeyHash> cells_;
  int size_ = 0;
};

}  // namespace vdb

#endif  // VDB_CORE_QUANTIZED_INDEX_H_
