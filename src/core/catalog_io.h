#ifndef VDB_CORE_CATALOG_IO_H_
#define VDB_CORE_CATALOG_IO_H_

#include <string>

#include "core/video_database.h"
#include "util/binary_io.h"
#include "util/result.h"

namespace vdb {

// On-disk persistence for a VideoDatabase's derived state (the catalog):
// per video its shots, variance features, SBD statistics, per-frame signs
// and the scene tree. With a saved catalog, a database restarts without
// re-decoding or re-analysing any video.
//
// Format: magic "VDBCAT02", FNV-1a checksum of the payload, then the
// payload (little-endian, length-prefixed strings). Any truncation or bit
// flip surfaces as kCorruption. Version 01 kept only the per-frame signs;
// version 02 also persists each frame's full signature_ba line (the
// frame-index tokenizer's input), so a reloaded catalog can rebuild its
// frame index without re-decoding video. Restored entries round-trip
// byte-exactly: signs, signature lines, shots, features, scene tree.
//
// SaveCatalog publishes atomically (temp file + fsync + rename), so a crash
// mid-save leaves either the previous catalog or the complete new one on
// disk — never a torn file. For a segmented, incrementally-publishable
// alternative see store/catalog_store.h, which shares the entry codec
// below.

Status SaveCatalog(const VideoDatabase& db, const std::string& path);

// Loads a catalog into `db`, which must be empty.
Status LoadCatalog(const std::string& path, VideoDatabase* db);

// The per-video entry codec, shared by the monolithic catalog above and
// the segmented store (store/catalog_store.h): one entry's name, tags,
// signs, shots, features, SBD statistics and scene tree. Deserialization
// validates internal consistency and returns kCorruption on any mismatch.
void SerializeCatalogEntry(const CatalogEntry& entry, BinaryWriter* w);
Result<CatalogEntry> DeserializeCatalogEntry(BinaryReader* r);

}  // namespace vdb

#endif  // VDB_CORE_CATALOG_IO_H_
