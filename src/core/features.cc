#include "core/features.h"

#include <cmath>

#include "util/math_util.h"
#include "util/string_util.h"

namespace vdb {

double ShotFeatures::Dv() const {
  return std::sqrt(var_ba) - std::sqrt(var_oa);
}

double SignVariance(const std::vector<PixelRGB>& signs) {
  size_t n = signs.size();
  if (n < 2) return 0.0;

  double mean_r = 0.0;
  double mean_g = 0.0;
  double mean_b = 0.0;
  for (const PixelRGB& p : signs) {
    mean_r += p.r;
    mean_g += p.g;
    mean_b += p.b;
  }
  // Equation 4/6: mean over l - k + 1 == N frames.
  mean_r /= static_cast<double>(n);
  mean_g /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);

  double acc_r = 0.0;
  double acc_g = 0.0;
  double acc_b = 0.0;
  for (const PixelRGB& p : signs) {
    acc_r += (p.r - mean_r) * (p.r - mean_r);
    acc_g += (p.g - mean_g) * (p.g - mean_g);
    acc_b += (p.b - mean_b) * (p.b - mean_b);
  }
  // Equation 3/5: divisor l - k == N - 1.
  double denom = static_cast<double>(n - 1);
  return (acc_r + acc_g + acc_b) / (3.0 * denom);
}

Result<ShotFeatures> ComputeShotFeatures(const VideoSignatures& signatures,
                                         const Shot& shot) {
  if (shot.start_frame < 0 || shot.end_frame >= signatures.frame_count() ||
      shot.start_frame > shot.end_frame) {
    return Status::OutOfRange(
        StrFormat("shot [%d,%d] outside video of %d frames",
                  shot.start_frame, shot.end_frame,
                  signatures.frame_count()));
  }
  std::vector<PixelRGB> ba;
  std::vector<PixelRGB> oa;
  ba.reserve(static_cast<size_t>(shot.frame_count()));
  oa.reserve(static_cast<size_t>(shot.frame_count()));
  for (int f = shot.start_frame; f <= shot.end_frame; ++f) {
    ba.push_back(signatures.frames[static_cast<size_t>(f)].sign_ba);
    oa.push_back(signatures.frames[static_cast<size_t>(f)].sign_oa);
  }
  ShotFeatures features;
  features.var_ba = SignVariance(ba);
  features.var_oa = SignVariance(oa);
  return features;
}

Result<std::vector<ShotFeatures>> ComputeAllShotFeatures(
    const VideoSignatures& signatures, const std::vector<Shot>& shots) {
  std::vector<ShotFeatures> out;
  out.reserve(shots.size());
  for (const Shot& shot : shots) {
    VDB_ASSIGN_OR_RETURN(ShotFeatures f,
                         ComputeShotFeatures(signatures, shot));
    out.push_back(f);
  }
  return out;
}

}  // namespace vdb
