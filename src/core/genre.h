#ifndef VDB_CORE_GENRE_H_
#define VDB_CORE_GENRE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace vdb {

// Genre/form classification (Section 4.1). The paper argues that two
// variance values suffice because retrieval happens *within* one of the
// ~4,655 classes of the Library of Congress moving-image genre/form guide
// (133 genres x 35 forms). This module carries a representative subset of
// that taxonomy — enough to exercise per-class retrieval; the guide itself
// is the authority for the full list.

// Names of the supported genres ("comedy", "western", ...).
const std::vector<std::string_view>& GenreNames();
// Names of the supported forms ("feature", "television series", ...).
const std::vector<std::string_view>& FormNames();

// Case-sensitive name -> id lookups; kNotFound for unknown names.
Result<int> GenreIdByName(std::string_view name);
Result<int> FormIdByName(std::string_view name);

// A video's classification: one form plus any number of genres, e.g.
// 'adventure and biographical feature' in the paper's Brave Heart example.
struct VideoClassification {
  std::vector<int> genre_ids;
  int form_id = -1;

  bool HasGenre(int genre_id) const;
  bool empty() const { return genre_ids.empty() && form_id < 0; }
};

// Builds a classification from names; fails on any unknown name.
Result<VideoClassification> MakeClassification(
    const std::vector<std::string>& genres, const std::string& form);

// "adventure, biographical feature" display form.
std::string ClassificationLabel(const VideoClassification& c);

// A retrieval class filter: any listed genre must be present (empty = any)
// and the form must match (-1 = any).
struct ClassFilter {
  int genre_id = -1;
  int form_id = -1;

  bool Matches(const VideoClassification& c) const;
};

}  // namespace vdb

#endif  // VDB_CORE_GENRE_H_
