#ifndef VDB_CORE_VIDEO_DATABASE_H_
#define VDB_CORE_VIDEO_DATABASE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/extractor.h"
#include "core/genre.h"
#include "core/features.h"
#include "core/scene_tree.h"
#include "core/shot_detector.h"
#include "core/variance_index.h"
#include "util/result.h"
#include "video/video.h"

namespace vdb {

// Everything the database derives from one ingested video.
struct CatalogEntry {
  int video_id = -1;
  std::string name;
  int frame_count = 0;
  double fps = 0.0;

  // Optional genre/form tags (Section 4.1); empty when never set.
  VideoClassification classification;

  VideoSignatures signatures;
  std::vector<Shot> shots;
  SbdStageStats sbd_stats;
  std::vector<ShotFeatures> features;
  SceneTree scene_tree;
};

// A retrieval answer: a matching shot plus the largest scene-tree node that
// shares its representative frame — the suggested place to start browsing
// (Section 4.2).
struct BrowsingSuggestion {
  QueryMatch match;
  std::string video_name;
  int scene_node = -1;       // node id within the video's scene tree
  std::string scene_label;   // e.g. "SN_7^1"
  int representative_frame = -1;
};

// Knobs for the whole ingest pipeline.
struct VideoDatabaseOptions {
  CameraTrackingOptions detector;
  SceneTreeOptions scene_tree;
};

// Knobs for IngestBatch.
struct IngestOptions {
  // Worker threads for the analysis phase; <= 0 uses HardwareThreads().
  int num_threads = 0;

  // When true (default) the batch is atomic: the first failure stops
  // scheduling further analyses and nothing is committed. When false every
  // video is analysed; the successes commit (in input order) and failures
  // are reported per slot.
  bool fail_fast = true;
};

// Per-batch outcome. `video_ids` and `statuses` parallel the input vector:
// a committed video has its id and an OK status; a failed one has id -1 and
// the failure; a video skipped or rolled back by fail_fast has id -1 and a
// FailedPrecondition status naming the reason.
struct BatchIngestResult {
  std::vector<int> video_ids;
  std::vector<Status> statuses;
  int committed = 0;

  bool ok() const { return first_error.ok(); }

  // The first failure in input order (OK when the whole batch committed).
  Status first_error;
};

// The integrated framework of the paper: ingest segments each video into
// shots (Step 1), builds its scene tree (Step 2), and indexes its shots by
// variance features (Step 3); queries return browsing suggestions.
//
// Thread safety: all public methods are safe to call concurrently. Reads
// (GetEntry, Search*, video_count, index) take a shared lock; ingest
// commits and SetClassification take an exclusive lock. Batch ingest
// analyses videos outside the lock, so queries keep running while a batch
// is in flight and only the (cheap) commit serialises against them.
// CatalogEntry pointers returned by GetEntry stay valid for the lifetime
// of the database: entries are never removed and, except for
// `classification`, never modified after commit.
class VideoDatabase {
 public:
  explicit VideoDatabase(VideoDatabaseOptions options = VideoDatabaseOptions());

  VideoDatabase(const VideoDatabase&) = delete;
  VideoDatabase& operator=(const VideoDatabase&) = delete;

  // Runs the full pipeline on `video` and returns its video id.
  Result<int> Ingest(const Video& video);

  // Streaming ingest from a .vdb file: frames are decoded and reduced to
  // signatures one at a time, so memory stays bounded by one frame plus
  // the signatures — a multi-gigabyte clip ingests without ever being
  // resident. Produces the same analysis as Ingest(ReadVideoFile(path)).
  Result<int> IngestFile(const std::string& path);

  // Analyses every video on a thread pool, then commits the results in
  // input order under one exclusive lock. Ids are assigned at commit time,
  // so the catalog is identical to sequentially ingesting the same vector
  // regardless of num_threads. Queries remain serviceable throughout.
  BatchIngestResult IngestBatch(const std::vector<Video>& videos,
                                const IngestOptions& options = IngestOptions());

  // IngestBatch over .vdb files (the streaming IngestFile pipeline per
  // worker, so peak memory is one frame per thread plus signatures).
  BatchIngestResult IngestBatchFiles(
      const std::vector<std::string>& paths,
      const IngestOptions& options = IngestOptions());

  // Installs an already-analysed entry (catalog restore): validates its
  // internal consistency, assigns the next video id, and indexes its
  // shots. No pixel data is touched.
  Result<int> Restore(CatalogEntry entry);

  int video_count() const;

  // Catalog access. Fails for unknown ids.
  Result<const CatalogEntry*> GetEntry(int video_id) const;

  // The live index. Safe to query concurrently with reads, but a reference
  // obtained here is not protected against a concurrent ingest commit —
  // prefer Search* while a batch may be in flight.
  const VarianceIndex& index() const { return index_; }

  // Tags a video with its genre/form classification.
  Status SetClassification(int video_id, VideoClassification classification);

  // Shots matching the variance query, each mapped to the largest scene
  // sharing its representative frame.
  Result<std::vector<BrowsingSuggestion>> Search(const VarianceQuery& query,
                                                 int top_k) const;

  // Like Search, restricted to videos matching `filter` — the paper's
  // "retrieval is performed within one of these 4,655 classes".
  Result<std::vector<BrowsingSuggestion>> SearchWithinClass(
      const VarianceQuery& query, int top_k,
      const ClassFilter& filter) const;

  // Exact-band retrieval for distributed scatter-gather: answers with the
  // top_k nearest shots strictly inside the query's tolerance band — no
  // widening — plus the counts a router needs to drive the widening loop
  // itself: `in_band` is how many shots matched the band (before top-k
  // truncation) and `eligible` is how many indexed shots could ever match
  // (the index size, or the class size when `filter` is non-null — the
  // same bound Search/SearchWithinClass use to stop widening).
  Result<std::vector<BrowsingSuggestion>> SearchBanded(
      const VarianceQuery& query, int top_k, const ClassFilter* filter,
      int64_t* in_band, int64_t* eligible) const;

  // Query-by-example: uses shot `shot_index` of `video_id` as the query and
  // returns the top_k most similar other shots.
  Result<std::vector<BrowsingSuggestion>> SearchSimilarToShot(
      int video_id, int shot_index, int top_k) const;

 private:
  // Unlocked internals; callers hold mu_ (shared suffices unless noted).
  int VideoCountLocked() const { return static_cast<int>(catalog_.size()); }
  Result<const CatalogEntry*> GetEntryLocked(int video_id) const;
  Result<BrowsingSuggestion> SuggestLocked(const QueryMatch& match) const;
  // Assigns the next id, indexes the shots, appends to the catalog.
  // Requires mu_ held exclusively.
  int CommitLocked(std::unique_ptr<CatalogEntry> entry);

  BatchIngestResult IngestBatchImpl(
      int count, const IngestOptions& options,
      const std::function<Status(int, CatalogEntry*)>& analyse);

  VideoDatabaseOptions options_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<CatalogEntry>> catalog_;
  VarianceIndex index_;
};

}  // namespace vdb

#endif  // VDB_CORE_VIDEO_DATABASE_H_
