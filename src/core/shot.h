#ifndef VDB_CORE_SHOT_H_
#define VDB_CORE_SHOT_H_

#include <vector>

namespace vdb {

// A shot: a maximal run of frames recorded from a single camera operation.
// Frame indices are 0-based and the range is inclusive.
struct Shot {
  int start_frame = 0;
  int end_frame = 0;

  int frame_count() const { return end_frame - start_frame + 1; }

  friend bool operator==(const Shot& a, const Shot& b) {
    return a.start_frame == b.start_frame && a.end_frame == b.end_frame;
  }
};

// Converts a sorted list of boundary positions (index of the first frame of
// each new shot, excluding 0) into shots covering [0, frame_count).
std::vector<Shot> ShotsFromBoundaries(const std::vector<int>& boundaries,
                                      int frame_count);

// Inverse of ShotsFromBoundaries.
std::vector<int> BoundariesFromShots(const std::vector<Shot>& shots);

}  // namespace vdb

#endif  // VDB_CORE_SHOT_H_
