#include "core/extractor.h"

#include "core/kernels.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace vdb {

Result<FrameSignature> ComputeFrameSignature(const Frame& frame,
                                             const AreaGeometry& geom,
                                             PyramidWorkspace* workspace) {
  return workspace->Compute(frame, geom);
}

Result<FrameSignature> ComputeFrameSignature(const Frame& frame,
                                             const AreaGeometry& geom) {
  // One workspace per thread: workers that extract many frames (batch
  // ingest pools, the streaming signature stage) reuse their scratch
  // across frames and allocate nothing in steady state.
  thread_local PyramidWorkspace workspace;
  return workspace.Compute(frame, geom);
}

namespace {

// Shared body of the serial and parallel passes: frame i reduces into its
// own pre-sized slot, so the parallel pass needs no locking and both paths
// produce bit-identical output.
Result<VideoSignatures> ComputeSignatures(const Video& video,
                                          int num_threads) {
  if (video.empty()) {
    return Status::InvalidArgument("video '" + video.name() +
                                   "' has no frames");
  }
  VideoSignatures out;
  VDB_ASSIGN_OR_RETURN(out.geometry,
                       ComputeAreaGeometry(video.width(), video.height()));
  out.frames.resize(static_cast<size_t>(video.frame_count()));
  if (num_threads <= 1) {
    // Serial pass: one explicit workspace for the whole clip, reducing
    // straight into the pre-sized slots.
    PyramidWorkspace workspace;
    for (int i = 0; i < video.frame_count(); ++i) {
      VDB_RETURN_IF_ERROR(workspace.ComputeInto(
          video.frame(i), out.geometry,
          &out.frames[static_cast<size_t>(i)]));
    }
    return out;
  }
  VDB_RETURN_IF_ERROR(ParallelFor(
      video.frame_count(), num_threads, [&](int i) -> Status {
        VDB_ASSIGN_OR_RETURN(
            out.frames[static_cast<size_t>(i)],
            ComputeFrameSignature(video.frame(i), out.geometry));
        return Status::Ok();
      }));
  return out;
}

}  // namespace

Result<VideoSignatures> ComputeVideoSignatures(const Video& video) {
  return ComputeSignatures(video, 1);
}

Result<VideoSignatures> ComputeVideoSignaturesParallel(const Video& video,
                                                       int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  return ComputeSignatures(video, num_threads);
}

}  // namespace vdb
