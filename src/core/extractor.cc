#include "core/extractor.h"

#include "util/parallel.h"
#include "util/string_util.h"

namespace vdb {

Result<FrameSignature> ComputeFrameSignature(const Frame& frame,
                                             const AreaGeometry& geom) {
  FrameSignature out;
  VDB_ASSIGN_OR_RETURN(Frame tba, ExtractTba(frame, geom));
  VDB_ASSIGN_OR_RETURN(AreaReduction ba, ReduceArea(tba));
  out.signature_ba = std::move(ba.signature);
  out.sign_ba = ba.sign;

  VDB_ASSIGN_OR_RETURN(Frame foa, ExtractFoa(frame, geom));
  VDB_ASSIGN_OR_RETURN(AreaReduction oa, ReduceArea(foa));
  out.sign_oa = oa.sign;
  return out;
}

namespace {

// Shared body of the serial and parallel passes: frame i reduces into its
// own pre-sized slot, so the parallel pass needs no locking and both paths
// produce bit-identical output.
Result<VideoSignatures> ComputeSignatures(const Video& video,
                                          int num_threads) {
  if (video.empty()) {
    return Status::InvalidArgument("video '" + video.name() +
                                   "' has no frames");
  }
  VideoSignatures out;
  VDB_ASSIGN_OR_RETURN(out.geometry,
                       ComputeAreaGeometry(video.width(), video.height()));
  out.frames.resize(static_cast<size_t>(video.frame_count()));
  VDB_RETURN_IF_ERROR(ParallelFor(
      video.frame_count(), num_threads, [&](int i) -> Status {
        VDB_ASSIGN_OR_RETURN(
            out.frames[static_cast<size_t>(i)],
            ComputeFrameSignature(video.frame(i), out.geometry));
        return Status::Ok();
      }));
  return out;
}

}  // namespace

Result<VideoSignatures> ComputeVideoSignatures(const Video& video) {
  return ComputeSignatures(video, 1);
}

Result<VideoSignatures> ComputeVideoSignaturesParallel(const Video& video,
                                                       int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  return ComputeSignatures(video, num_threads);
}

}  // namespace vdb
