#include "core/pyramid.h"

#include <cmath>

#include "core/geometry.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace vdb {
namespace {

// Burt & Adelson generating kernel with a = 0.375: [1 4 6 4 1] / 16.
constexpr double kKernel[5] = {1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16,
                               1.0 / 16};

PixelRGB WeightedPixel(const Signature& in, size_t base) {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
  for (size_t m = 0; m < 5; ++m) {
    r += kKernel[m] * in[base + m].r;
    g += kKernel[m] * in[base + m].g;
    b += kKernel[m] * in[base + m].b;
  }
  return PixelRGB(ClampToByte(r), ClampToByte(g), ClampToByte(b));
}

}  // namespace

Result<Signature> ReduceLineOnce(const Signature& in) {
  int n = static_cast<int>(in.size());
  if (n < 5 || !IsSizeSetElement(n)) {
    return Status::InvalidArgument(
        StrFormat("line size %d is not a reducible size-set element", n));
  }
  int out_size = (n - 3) / 2;
  Signature out(static_cast<size_t>(out_size));
  for (int i = 0; i < out_size; ++i) {
    out[static_cast<size_t>(i)] = WeightedPixel(in, static_cast<size_t>(2 * i));
  }
  return out;
}

Result<PixelRGB> ReduceLineToPixel(const Signature& in) {
  if (in.size() == 1) return in[0];
  // The first reduction reads straight from `in`; only its (smaller)
  // output is materialised, so no copy of the input is ever made.
  VDB_ASSIGN_OR_RETURN(Signature line, ReduceLineOnce(in));
  while (line.size() > 1) {
    VDB_ASSIGN_OR_RETURN(line, ReduceLineOnce(line));
  }
  return line[0];
}

Result<Signature> ReduceColumnsToLine(const Frame& image) {
  if (image.empty()) {
    return Status::InvalidArgument("cannot reduce empty image");
  }
  if (!IsSizeSetElement(image.height())) {
    return Status::InvalidArgument(StrFormat(
        "image height %d is not a size-set element", image.height()));
  }
  Signature line(static_cast<size_t>(image.width()));
  Signature column(static_cast<size_t>(image.height()));
  for (int x = 0; x < image.width(); ++x) {
    for (int y = 0; y < image.height(); ++y) {
      column[static_cast<size_t>(y)] = image.at_unchecked(x, y);
    }
    VDB_ASSIGN_OR_RETURN(line[static_cast<size_t>(x)],
                         ReduceLineToPixel(column));
  }
  return line;
}

Result<AreaReduction> ReduceArea(const Frame& image) {
  AreaReduction out;
  VDB_ASSIGN_OR_RETURN(out.signature, ReduceColumnsToLine(image));
  if (!IsSizeSetElement(static_cast<int>(out.signature.size()))) {
    return Status::InvalidArgument(
        StrFormat("image width %zu is not a size-set element",
                  out.signature.size()));
  }
  VDB_ASSIGN_OR_RETURN(out.sign, ReduceLineToPixel(out.signature));
  return out;
}

}  // namespace vdb
