#include "core/scene_tree.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/string_util.h"

namespace vdb {

std::string SceneNode::Label() const {
  // The paper numbers shots from 1: SN_<shot#>^<level>.
  return StrFormat("SN_%d^%d", shot_index + 1, level);
}

Result<SceneTree> SceneTree::FromParts(std::vector<SceneNode> nodes,
                                       int root, int shot_count) {
  SceneTree tree;
  tree.nodes_ = std::move(nodes);
  tree.root_ = root;
  tree.shot_count_ = shot_count;
  if (root < 0 || root >= tree.node_count()) {
    return Status::Corruption(StrFormat("tree root %d of %d nodes", root,
                                        tree.node_count()));
  }
  // Leaves must come first and map one-to-one onto shots (LeafForShot
  // relies on this).
  for (int i = 0; i < shot_count; ++i) {
    if (i >= tree.node_count() ||
        !tree.nodes_[static_cast<size_t>(i)].IsLeaf() ||
        tree.nodes_[static_cast<size_t>(i)].shot_index != i) {
      return Status::Corruption(
          StrFormat("node %d is not the leaf of shot %d", i, i));
    }
  }
  VDB_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

const SceneNode& SceneTree::node(int id) const {
  VDB_CHECK(id >= 0 && id < node_count()) << "node id " << id;
  return nodes_[static_cast<size_t>(id)];
}

int SceneTree::LeafForShot(int shot_index) const {
  VDB_CHECK(shot_index >= 0 && shot_index < shot_count_)
      << "shot " << shot_index << " of " << shot_count_;
  // Leaves are created first, in shot order, so leaf id == shot index.
  return shot_index;
}

int SceneTree::Height() const {
  return root_ < 0 ? 0 : node(root_).level;
}

int SceneTree::LargestSceneForShot(int shot_index) const {
  int best = -1;
  for (const SceneNode& n : nodes_) {
    if (n.shot_index == shot_index &&
        (best < 0 || n.level > node(best).level)) {
      best = n.id;
    }
  }
  return best;
}

namespace {

void RenderAscii(const SceneTree& tree, int id, const std::string& prefix,
                 bool last, std::ostream& os) {
  const SceneNode& n = tree.node(id);
  os << prefix;
  if (!prefix.empty()) {
    os << (last ? "`-- " : "|-- ");
  }
  os << n.Label();
  if (n.IsLeaf()) {
    os << "  (shot#" << n.shot_index + 1 << ")";
  }
  os << "  rep=frame " << n.representative_frame + 1;
  os << '\n';
  std::string child_prefix =
      prefix.empty() ? " " : prefix + (last ? "    " : "|   ");
  for (size_t i = 0; i < n.children.size(); ++i) {
    RenderAscii(tree, n.children[i], child_prefix,
                i + 1 == n.children.size(), os);
  }
}

}  // namespace

std::string SceneTree::ToAscii() const {
  if (root_ < 0) return "(empty scene tree)\n";
  std::ostringstream oss;
  RenderAscii(*this, root_, "", true, oss);
  return oss.str();
}

Status SceneTree::Validate() const {
  if (root_ < 0) {
    return shot_count_ == 0
               ? Status::Ok()
               : Status::Internal("tree with shots but no root");
  }
  int leaf_count = 0;
  for (const SceneNode& n : nodes_) {
    if (n.id != &n - nodes_.data()) {
      return Status::Internal("node id does not match its index");
    }
    if (n.IsLeaf()) {
      ++leaf_count;
      if (n.level != 0) {
        return Status::Internal(
            StrFormat("leaf %d has level %d", n.id, n.level));
      }
    } else {
      int max_child_level = -1;
      for (int c : n.children) {
        if (c < 0 || c >= node_count()) {
          return Status::Internal(StrFormat("node %d has bad child", n.id));
        }
        if (node(c).parent != n.id) {
          return Status::Internal(
              StrFormat("child %d of node %d has parent %d", c, n.id,
                        node(c).parent));
        }
        max_child_level = std::max(max_child_level, node(c).level);
      }
      if (n.level != max_child_level + 1) {
        return Status::Internal(
            StrFormat("node %d level %d != max child level %d + 1", n.id,
                      n.level, max_child_level));
      }
    }
    if (n.id == root_) {
      if (n.parent != -1) {
        return Status::Internal("root has a parent");
      }
    } else if (n.parent < 0 || n.parent >= node_count()) {
      return Status::Internal(StrFormat("node %d is detached", n.id));
    }
    if (n.shot_index < 0 || n.shot_index >= shot_count_) {
      return Status::Internal(StrFormat("node %d is unnamed", n.id));
    }
    if (n.representative_frame < 0) {
      return Status::Internal(
          StrFormat("node %d has no representative frame", n.id));
    }
  }
  if (leaf_count != shot_count_) {
    return Status::Internal(StrFormat("%d leaves for %d shots", leaf_count,
                                      shot_count_));
  }
  return Status::Ok();
}

bool ShotsRelated(const VideoSignatures& signatures, const Shot& a,
                  const Shot& b, const SceneTreeOptions& options) {
  auto sign = [&](int frame) {
    return signatures.frames[static_cast<size_t>(frame)].sign_ba;
  };
  double threshold = options.relationship_threshold_pct;
  auto related = [&](int fa, int fb) {
    double ds = MaxChannelDifference(sign(fa), sign(fb)) / 256.0 * 100.0;
    return ds < threshold;
  };

  if (options.diagonal_scan) {
    // The paper's walk: i over A, j over B wrapping around (Section 3.1).
    int j = b.start_frame;
    for (int i = a.start_frame; i <= a.end_frame; ++i) {
      if (related(i, j)) return true;
      ++j;
      if (j > b.end_frame) j = b.start_frame;
    }
    return false;
  }

  for (int i = a.start_frame; i <= a.end_frame; ++i) {
    for (int j = b.start_frame; j <= b.end_frame; ++j) {
      if (related(i, j)) return true;
    }
  }
  return false;
}

Result<RepetitiveRun> FindMostRepetitiveRun(const VideoSignatures& signatures,
                                            const Shot& shot) {
  if (shot.start_frame < 0 || shot.end_frame >= signatures.frame_count() ||
      shot.start_frame > shot.end_frame) {
    return Status::OutOfRange(
        StrFormat("shot [%d,%d] outside video of %d frames",
                  shot.start_frame, shot.end_frame,
                  signatures.frame_count()));
  }
  RepetitiveRun best{shot.start_frame, 1};
  int run_start = shot.start_frame;
  int run_len = 1;
  for (int f = shot.start_frame + 1; f <= shot.end_frame; ++f) {
    const PixelRGB& prev =
        signatures.frames[static_cast<size_t>(f - 1)].sign_ba;
    const PixelRGB& cur = signatures.frames[static_cast<size_t>(f)].sign_ba;
    if (cur == prev) {
      ++run_len;
    } else {
      run_start = f;
      run_len = 1;
    }
    if (run_len > best.length) {
      best.start_frame = run_start;
      best.length = run_len;
    }
  }
  return best;
}

Result<std::vector<RepetitiveRun>> FindTopRepetitiveRuns(
    const VideoSignatures& signatures, const Shot& shot, int count) {
  if (count <= 0) {
    return Status::InvalidArgument("run count must be positive");
  }
  if (shot.start_frame < 0 || shot.end_frame >= signatures.frame_count() ||
      shot.start_frame > shot.end_frame) {
    return Status::OutOfRange(
        StrFormat("shot [%d,%d] outside video of %d frames",
                  shot.start_frame, shot.end_frame,
                  signatures.frame_count()));
  }
  std::vector<RepetitiveRun> runs;
  int run_start = shot.start_frame;
  for (int f = shot.start_frame + 1; f <= shot.end_frame + 1; ++f) {
    bool run_ends =
        f > shot.end_frame ||
        !(signatures.frames[static_cast<size_t>(f)].sign_ba ==
          signatures.frames[static_cast<size_t>(f - 1)].sign_ba);
    if (run_ends) {
      runs.push_back(RepetitiveRun{run_start, f - run_start});
      run_start = f;
    }
  }
  std::stable_sort(runs.begin(), runs.end(),
                   [](const RepetitiveRun& a, const RepetitiveRun& b) {
                     return a.length > b.length;
                   });
  if (static_cast<int>(runs.size()) > count) {
    runs.resize(static_cast<size_t>(count));
  }
  return runs;
}

namespace {

// Collects the shot indices of every leaf under `node_id`.
void CollectSubtreeShots(const SceneTree& tree, int node_id,
                         std::vector<int>* shot_indices) {
  const SceneNode& node = tree.node(node_id);
  if (node.IsLeaf()) {
    shot_indices->push_back(node.shot_index);
    return;
  }
  for (int child : node.children) {
    CollectSubtreeShots(tree, child, shot_indices);
  }
}

}  // namespace

Result<std::vector<int>> SceneRepresentativeFrames(
    const SceneTree& tree, const VideoSignatures& signatures,
    const std::vector<Shot>& shots, int node_id, int count) {
  if (node_id < 0 || node_id >= tree.node_count()) {
    return Status::NotFound(StrFormat("scene node %d", node_id));
  }
  if (count <= 0) {
    return Status::InvalidArgument("frame count must be positive");
  }
  std::vector<int> shot_indices;
  CollectSubtreeShots(tree, node_id, &shot_indices);

  std::vector<RepetitiveRun> all_runs;
  for (int s : shot_indices) {
    if (s < 0 || s >= static_cast<int>(shots.size())) {
      return Status::InvalidArgument(
          StrFormat("tree references shot %d of %zu", s, shots.size()));
    }
    VDB_ASSIGN_OR_RETURN(
        std::vector<RepetitiveRun> runs,
        FindTopRepetitiveRuns(signatures, shots[static_cast<size_t>(s)],
                              count));
    all_runs.insert(all_runs.end(), runs.begin(), runs.end());
  }
  std::stable_sort(all_runs.begin(), all_runs.end(),
                   [](const RepetitiveRun& a, const RepetitiveRun& b) {
                     if (a.length != b.length) return a.length > b.length;
                     return a.start_frame < b.start_frame;
                   });
  std::vector<int> frames;
  for (const RepetitiveRun& run : all_runs) {
    if (static_cast<int>(frames.size()) >= count) break;
    frames.push_back(run.start_frame);
  }
  return frames;
}

SceneTreeBuilder::SceneTreeBuilder(SceneTreeOptions options)
    : options_(options) {}

SceneTreeAccumulator::SceneTreeAccumulator(SceneTreeOptions options)
    : options_(options) {}

int SceneTreeAccumulator::NewLeaf(int shot_index) {
  ProvNode n;
  n.shot_index = shot_index;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

int SceneTreeAccumulator::NewInternal() {
  nodes_.push_back(ProvNode{});
  return static_cast<int>(nodes_.size()) - 1;
}

void SceneTreeAccumulator::Connect(int child, int parent) {
  VDB_CHECK(nodes_[static_cast<size_t>(child)].parent == -1)
      << "node " << child << " already has a parent";
  nodes_[static_cast<size_t>(child)].parent = parent;
  nodes_[static_cast<size_t>(parent)].children.push_back(child);
}

int SceneTreeAccumulator::RootOf(int id) const {
  while (nodes_[static_cast<size_t>(id)].parent != -1) {
    id = nodes_[static_cast<size_t>(id)].parent;
  }
  return id;
}

// Lowest common ancestor of a and b, or -1 when they share none.
int SceneTreeAccumulator::Lca(int a, int b) const {
  std::unordered_set<int> ancestors;
  for (int x = nodes_[static_cast<size_t>(a)].parent; x != -1;
       x = nodes_[static_cast<size_t>(x)].parent) {
    ancestors.insert(x);
  }
  for (int x = nodes_[static_cast<size_t>(b)].parent; x != -1;
       x = nodes_[static_cast<size_t>(x)].parent) {
    if (ancestors.count(x)) return x;
  }
  return -1;
}

Status SceneTreeAccumulator::AddShot(const VideoSignatures& signatures,
                                     const Shot& shot) {
  if (shot.start_frame < 0 || shot.start_frame > shot.end_frame ||
      shot.end_frame >= signatures.frame_count()) {
    return Status::OutOfRange(
        StrFormat("shot [%d,%d] outside video of %d frames", shot.start_frame,
                  shot.end_frame, signatures.frame_count()));
  }
  const int i = static_cast<int>(shots_.size());
  shots_.push_back(shot);
  leaf_of_.push_back(NewLeaf(i));

  // Steps 2-5 of the Section-3.1 scan, for this one shot. The first two
  // shots just get their leaves; the scan proper starts at the third.
  if (i < 2) return Status::Ok();

  // Step 3: compare shot i with shots i-2, ..., 0 in descending order.
  // The paper's Figure 6(g) additionally relates a shot to its immediate
  // predecessor (shot#9 to shot#8), so i-1 is tested as a fallback when
  // the descending scan finds nothing.
  int j = -1;
  for (int k = i - 2; k >= 0; --k) {
    if (ShotsRelated(signatures, shots_[static_cast<size_t>(i)],
                     shots_[static_cast<size_t>(k)], options_)) {
      j = k;
      break;
    }
  }
  if (j < 0 && ShotsRelated(signatures, shots_[static_cast<size_t>(i)],
                            shots_[static_cast<size_t>(i - 1)], options_)) {
    j = i - 1;
  }
  if (j < 0) {
    // No related shot: a fresh empty node becomes the leaf's parent.
    int empty = NewInternal();
    Connect(leaf_of_[static_cast<size_t>(i)], empty);
    return Status::Ok();
  }

  // Step 4: place SN_i^0 relative to SN_{i-1}^0 and SN_j^0.
  int prev_leaf = leaf_of_[static_cast<size_t>(i - 1)];
  int j_leaf = leaf_of_[static_cast<size_t>(j)];
  bool prev_parentless = nodes_[static_cast<size_t>(prev_leaf)].parent < 0;
  bool j_parentless = nodes_[static_cast<size_t>(j_leaf)].parent < 0;
  if (prev_parentless && j_parentless) {
    // Scenario 1: group every still-parentless leaf between j and i under
    // one new empty node.
    int empty = NewInternal();
    for (int k = j; k <= i; ++k) {
      int leaf = leaf_of_[static_cast<size_t>(k)];
      if (nodes_[static_cast<size_t>(leaf)].parent < 0) {
        Connect(leaf, empty);
      }
    }
    return Status::Ok();
  }
  int lca = Lca(prev_leaf, j_leaf);
  if (lca >= 0) {
    // Scenario 2: they already share an ancestor; join it.
    Connect(leaf_of_[static_cast<size_t>(i)], lca);
    return Status::Ok();
  }
  // Scenario 3: attach to the oldest ancestor of SN_{i-1}, then merge the
  // two subtrees under a new empty node.
  int root_prev = RootOf(prev_leaf);
  if (nodes_[static_cast<size_t>(root_prev)].IsLeaf()) {
    // Degenerate: the "oldest ancestor" is a bare leaf. Give it an empty
    // parent first so we never attach children to a leaf.
    int wrapper = NewInternal();
    Connect(root_prev, wrapper);
    root_prev = wrapper;
  }
  Connect(leaf_of_[static_cast<size_t>(i)], root_prev);
  int root_j = RootOf(j_leaf);
  if (root_prev != root_j) {
    int empty = NewInternal();
    Connect(root_prev, empty);
    Connect(root_j, empty);
  }
  return Status::Ok();
}

Result<SceneTree> SceneTreeAccumulator::Finalize(
    const VideoSignatures& signatures) const {
  if (shots_.empty()) {
    return Status::InvalidArgument("cannot build a scene tree from 0 shots");
  }
  const int n = static_cast<int>(shots_.size());

  // Renumber into the batch layout: leaf of shot s → s, empty nodes in
  // creation order → n, n+1, ... The batch builder numbers its empties in
  // the same scan order, so the layouts coincide.
  std::vector<int> final_id(nodes_.size(), -1);
  int next_internal = n;
  for (size_t p = 0; p < nodes_.size(); ++p) {
    final_id[p] = nodes_[p].IsLeaf() ? nodes_[p].shot_index : next_internal++;
  }
  std::vector<SceneNode> out(nodes_.size());
  for (size_t p = 0; p < nodes_.size(); ++p) {
    SceneNode node;
    node.id = final_id[p];
    node.parent =
        nodes_[p].parent < 0 ? -1 : final_id[static_cast<size_t>(nodes_[p].parent)];
    node.children.reserve(nodes_[p].children.size());
    for (int c : nodes_[p].children) {
      node.children.push_back(final_id[static_cast<size_t>(c)]);
    }
    out[static_cast<size_t>(node.id)] = std::move(node);
  }

  // Connect all currently parentless nodes to one root. When a single
  // subtree already spans everything, it is the root — an extra unary
  // level would carry no information.
  std::vector<int> orphans;
  for (const SceneNode& node : out) {
    if (node.parent < 0) orphans.push_back(node.id);
  }
  int root;
  if (orphans.size() == 1) {
    root = orphans.front();
  } else {
    SceneNode root_node;
    root_node.id = static_cast<int>(out.size());
    root = root_node.id;
    out.push_back(std::move(root_node));
    for (int o : orphans) {
      out[static_cast<size_t>(o)].parent = root;
      out[static_cast<size_t>(root)].children.push_back(o);
    }
  }

  // Levels: leaves 0, parents one above their highest child (bottom-up; a
  // node's id is always greater than its children's except leaves, so one
  // forward pass over ids works for internal nodes).
  for (SceneNode& node : out) {
    if (!node.IsLeaf()) {
      int max_child = 0;
      for (int c : node.children) {
        max_child = std::max(max_child, out[static_cast<size_t>(c)].level);
      }
      node.level = max_child + 1;
    }
  }

  // Step 6: representative frames for leaves, then naming bottom-up. Track
  // the longest identical-sign run per node (for leaves: within the shot).
  std::vector<int> run_length(out.size(), 0);
  for (int i = 0; i < n; ++i) {
    VDB_ASSIGN_OR_RETURN(
        RepetitiveRun run,
        FindMostRepetitiveRun(signatures, shots_[static_cast<size_t>(i)]));
    SceneNode& leaf = out[static_cast<size_t>(i)];
    leaf.shot_index = i;
    leaf.representative_frame = run.start_frame;
    run_length[static_cast<size_t>(i)] = run.length;
  }
  // Internal nodes in id order: children of internal nodes always have
  // smaller ids, so their names are already settled.
  for (SceneNode& node : out) {
    if (node.IsLeaf()) continue;
    int best_child = -1;
    for (int c : node.children) {
      if (best_child < 0 ||
          run_length[static_cast<size_t>(c)] >
              run_length[static_cast<size_t>(best_child)] ||
          (run_length[static_cast<size_t>(c)] ==
               run_length[static_cast<size_t>(best_child)] &&
           out[static_cast<size_t>(c)].shot_index <
               out[static_cast<size_t>(best_child)].shot_index)) {
        best_child = c;
      }
    }
    VDB_CHECK(best_child >= 0) << "internal node without children";
    const SceneNode& chosen = out[static_cast<size_t>(best_child)];
    node.shot_index = chosen.shot_index;
    node.representative_frame = chosen.representative_frame;
    run_length[static_cast<size_t>(node.id)] =
        run_length[static_cast<size_t>(best_child)];
  }

  SceneTree tree;
  tree.nodes_ = std::move(out);
  tree.root_ = root;
  tree.shot_count_ = n;
  VDB_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

Result<SceneTree> SceneTreeBuilder::Build(
    const VideoSignatures& signatures, const std::vector<Shot>& shots) const {
  if (shots.empty()) {
    return Status::InvalidArgument("cannot build a scene tree from 0 shots");
  }
  // Batch construction is the accumulator replayed over all shots: one
  // code path for streaming and offline ingest.
  SceneTreeAccumulator acc(options_);
  for (const Shot& shot : shots) {
    VDB_RETURN_IF_ERROR(acc.AddShot(signatures, shot));
  }
  return acc.Finalize(signatures);
}

}  // namespace vdb
