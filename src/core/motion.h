#ifndef VDB_CORE_MOTION_H_
#define VDB_CORE_MOTION_H_

#include <string>
#include <vector>

#include "core/extractor.h"
#include "core/shot.h"
#include "util/result.h"

namespace vdb {

// Camera-motion classification from background signatures.
//
// This extends the paper's camera-tracking machinery the way its companion
// work (Oh, Hua & Liang, MMCN 2000) classifies scene changes: the TBA
// signature is a one-line map of the background, so the *displacement* of
// signature content between consecutive frames reveals how the camera
// moved. The strip has three sections — [rotated left column | top bar |
// rotated right column] — which respond differently:
//
//   horizontal pan:  the top-bar section shifts uniformly (world moves
//                    opposite to the camera);
//   vertical tilt:   the side-column sections shift (in opposite strip
//                    directions, because the left column is mirrored by
//                    the outward rotation) while the top bar decorrelates;
//   zoom:            the two halves of the top-bar section diverge
//                    (zoom-in) or converge (zoom-out);
//   static camera:   every probe sits near zero displacement.
//
// Probes are matched by windowed minimum mean-absolute-difference search
// over the signature line — no pixel data is touched.

enum class CameraMotionLabel {
  kStatic,
  kPanLeft,   // camera moves left (world content shifts right)
  kPanRight,
  kTiltUp,
  kTiltDown,
  kZoomIn,
  kZoomOut,
  kComplex,  // no probe pattern fits (fast motion, flashes, chaos)
};

std::string_view CameraMotionLabelName(CameraMotionLabel label);

// Direction-agnostic grouping for similarity purposes: a pan to the left
// and a pan to the right are the same *kind* of shot.
enum class CameraMotionGroup { kStatic, kPan, kTilt, kZoom, kComplex };

CameraMotionGroup MotionGroup(CameraMotionLabel label);
std::string_view CameraMotionGroupName(CameraMotionGroup group);

// Displacement of one probe window between two signatures.
struct ProbeShift {
  // Best displacement in signature pixels (positive = content moved toward
  // higher indices in the second frame).
  int shift = 0;
  // Mean absolute channel difference at the best displacement (0 = perfect
  // match); values near the colour range mean the probe found nothing.
  double residual = 255.0;
};

// Matches the window of `a` centred at `center` (half-width `half_window`)
// against `b`, searching displacements in [-max_shift, max_shift].
// Fails if the window does not fit inside the signature at shift 0.
Result<ProbeShift> EstimateProbeShift(const Signature& a, const Signature& b,
                                      int center, int half_window,
                                      int max_shift);

struct MotionOptions {
  int half_window = 8;      // probe half-width in signature pixels
  int max_shift = 12;       // displacement search range per frame pair
  double good_residual = 12.0;   // probe trusted below this residual
  double static_threshold = 0.6; // mean |shift| below this is "no motion"
};

// Per-shot classification result.
struct MotionEstimate {
  CameraMotionLabel label = CameraMotionLabel::kComplex;
  // Mean per-frame displacement of the dominant probe group (signature
  // pixels/frame; sign follows the strip direction).
  double mean_shift = 0.0;
  // Fraction of frame pairs whose probe pattern agreed with the label.
  double confidence = 0.0;
};

// Classifies the camera motion of `shot` from precomputed signatures.
Result<MotionEstimate> ClassifyShotMotion(
    const VideoSignatures& signatures, const Shot& shot,
    const MotionOptions& options = MotionOptions());

// Classification for every shot.
Result<std::vector<MotionEstimate>> ClassifyAllShotMotion(
    const VideoSignatures& signatures, const std::vector<Shot>& shots,
    const MotionOptions& options = MotionOptions());

}  // namespace vdb

#endif  // VDB_CORE_MOTION_H_
