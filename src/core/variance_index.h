#ifndef VDB_CORE_VARIANCE_INDEX_H_
#define VDB_CORE_VARIANCE_INDEX_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/features.h"
#include "util/result.h"

namespace vdb {

// One row of the paper's index table (Table 4): a shot of some video with
// its variance features.
struct IndexEntry {
  int video_id = -1;
  int shot_index = -1;
  double var_ba = 0.0;
  double var_oa = 0.0;

  double SqrtVarBa() const;
  double Dv() const;  // sqrt(Var^BA) - sqrt(Var^OA)
};

// An impression query (Section 4.2): how much things are changing in the
// background and object areas, with tolerances.
struct VarianceQuery {
  double var_ba = 0.0;
  double var_oa = 0.0;
  double alpha = 1.0;  // tolerance on D^v        (Equation 7)
  double beta = 1.0;   // tolerance on sqrt(VarBA) (Equation 8)
};

// A match with its distance from the query in (D^v, sqrt(VarBA)) space.
struct QueryMatch {
  IndexEntry entry;
  double distance = 0.0;
};

// The variance-based similarity index. Entries are kept sorted by D^v so a
// query is a binary-searched band scan over Equation 7's range, filtered by
// Equation 8.
//
// Thread safety: const operations (all Query variants, size, entries) are
// safe to call concurrently with each other; Add must not race with them.
class VarianceIndex {
 public:
  VarianceIndex() = default;

  // Movable (the sort mutex is not moved); not copyable.
  VarianceIndex(VarianceIndex&& other) noexcept;
  VarianceIndex& operator=(VarianceIndex&& other) noexcept;
  VarianceIndex(const VarianceIndex&) = delete;
  VarianceIndex& operator=(const VarianceIndex&) = delete;

  // Adds one shot. Entries may arrive in any order; the table is lazily
  // re-sorted in full on the next query.
  void Add(const IndexEntry& entry);

  // Adds every shot of a video. When the table is currently sorted this is
  // the incremental path — the new rows are sorted on their own and stably
  // merged in, bit-identical to a full rebuild but without re-sorting the
  // whole table — so both batch and streaming ingest pay O(m log m + n)
  // per video, not O((n+m) log (n+m)).
  void AddVideo(int video_id, const std::vector<ShotFeatures>& features);

  int size() const { return static_cast<int>(entries_.size()); }

  // All shots satisfying Equations 7 and 8, ordered by ascending distance
  // (Euclidean in (D^v, sqrt(VarBA)) space).
  std::vector<QueryMatch> Query(const VarianceQuery& query) const;

  // The k nearest shots regardless of the tolerance band (used for the
  // paper's "three most similar shots" figures). Shots matching the band
  // are preferred; the band is widened until k matches exist or the index
  // is exhausted. `exclude_video`/`exclude_shot` skip the query shot
  // itself when querying by example (-1 to disable).
  std::vector<QueryMatch> QueryTopK(const VarianceQuery& query, int k,
                                    int exclude_video = -1,
                                    int exclude_shot = -1) const;

  // Like QueryTopK but keeps only entries for which `keep` returns true
  // (class-filtered retrieval, Section 4.1). `max_matching` bounds how
  // many index entries can satisfy the predicate at all — the band stops
  // widening once that many are found (pass size() when unknown).
  std::vector<QueryMatch> QueryTopKWhere(
      const VarianceQuery& query, int k,
      const std::function<bool(const IndexEntry&)>& keep,
      int max_matching) const;

  // Linear-scan variant of Query, used to cross-check the sorted index and
  // by the performance bench.
  std::vector<QueryMatch> QueryLinear(const VarianceQuery& query) const;

  const std::vector<IndexEntry>& entries() const { return entries_; }

 private:
  void EnsureSorted() const;

  // Sorted by D^v (lazily re-sorted after Add; the mutex keeps the lazy
  // sort safe under concurrent const queries).
  mutable std::mutex sort_mu_;
  mutable std::vector<IndexEntry> entries_;
  mutable bool sorted_ = true;
};

}  // namespace vdb

#endif  // VDB_CORE_VARIANCE_INDEX_H_
