#include "core/browser.h"

#include <algorithm>

#include "util/string_util.h"

namespace vdb {

SceneBrowser::SceneBrowser(const CatalogEntry* entry) : entry_(entry) {
  VDB_CHECK(entry != nullptr) << "SceneBrowser needs a catalog entry";
  current_ = entry_->scene_tree.root();
}

const SceneNode& SceneBrowser::CurrentNode() const {
  return entry_->scene_tree.node(current_);
}

std::vector<int> SceneBrowser::Path() const {
  std::vector<int> path;
  for (int id = current_; id != -1; id = entry_->scene_tree.node(id).parent) {
    path.push_back(id);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string SceneBrowser::Breadcrumbs() const {
  std::vector<std::string> labels;
  for (int id : Path()) {
    labels.push_back(entry_->scene_tree.node(id).Label());
  }
  return StrJoin(labels, " > ");
}

Shot SceneBrowser::CoverageSpan() const {
  const SceneTree& tree = entry_->scene_tree;
  int first = entry_->frame_count;
  int last = -1;
  std::vector<int> stack = {current_};
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    const SceneNode& node = tree.node(id);
    if (node.IsLeaf()) {
      const Shot& shot =
          entry_->shots[static_cast<size_t>(node.shot_index)];
      first = std::min(first, shot.start_frame);
      last = std::max(last, shot.end_frame);
    }
    for (int child : node.children) stack.push_back(child);
  }
  return Shot{first, last};
}

Result<std::vector<int>> SceneBrowser::KeyFrames(int count) const {
  return SceneRepresentativeFrames(entry_->scene_tree, entry_->signatures,
                                   entry_->shots, current_, count);
}

Status SceneBrowser::EnterChild(int child_index) {
  const SceneNode& node = CurrentNode();
  if (child_index < 0 ||
      child_index >= static_cast<int>(node.children.size())) {
    return Status::OutOfRange(
        StrFormat("child %d of %zu", child_index, node.children.size()));
  }
  current_ = node.children[static_cast<size_t>(child_index)];
  return Status::Ok();
}

Status SceneBrowser::Up() {
  if (CurrentNode().parent == -1) {
    return Status::FailedPrecondition("already at the root");
  }
  current_ = CurrentNode().parent;
  return Status::Ok();
}

Status SceneBrowser::NextSibling() {
  int parent = CurrentNode().parent;
  if (parent == -1) {
    return Status::FailedPrecondition("the root has no siblings");
  }
  const SceneNode& p = entry_->scene_tree.node(parent);
  auto it = std::find(p.children.begin(), p.children.end(), current_);
  VDB_CHECK(it != p.children.end()) << "cursor missing from parent";
  if (it + 1 == p.children.end()) {
    return Status::OutOfRange("already the last sibling");
  }
  current_ = *(it + 1);
  return Status::Ok();
}

Status SceneBrowser::PrevSibling() {
  int parent = CurrentNode().parent;
  if (parent == -1) {
    return Status::FailedPrecondition("the root has no siblings");
  }
  const SceneNode& p = entry_->scene_tree.node(parent);
  auto it = std::find(p.children.begin(), p.children.end(), current_);
  VDB_CHECK(it != p.children.end()) << "cursor missing from parent";
  if (it == p.children.begin()) {
    return Status::OutOfRange("already the first sibling");
  }
  current_ = *(it - 1);
  return Status::Ok();
}

void SceneBrowser::Reset() { current_ = entry_->scene_tree.root(); }

Status SceneBrowser::JumpTo(int node_id) {
  if (node_id < 0 || node_id >= entry_->scene_tree.node_count()) {
    return Status::NotFound(StrFormat("scene node %d", node_id));
  }
  current_ = node_id;
  return Status::Ok();
}

}  // namespace vdb
