#include "core/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "util/math_util.h"

namespace vdb {

Result<ShotFingerprint> ComputeShotFingerprint(
    const VideoSignatures& signatures, const Shot& shot,
    const MotionOptions& motion_options) {
  ShotFingerprint fp;
  VDB_ASSIGN_OR_RETURN(fp.variances,
                       ComputeShotFeatures(signatures, shot));
  VDB_ASSIGN_OR_RETURN(MotionEstimate motion,
                       ClassifyShotMotion(signatures, shot, motion_options));
  fp.motion = motion.label;

  double r = 0, g = 0, b = 0;
  for (int f = shot.start_frame; f <= shot.end_frame; ++f) {
    const PixelRGB& sign =
        signatures.frames[static_cast<size_t>(f)].sign_ba;
    r += sign.r;
    g += sign.g;
    b += sign.b;
  }
  double n = shot.frame_count();
  fp.mean_sign_ba = PixelRGB(ClampToByte(r / n), ClampToByte(g / n),
                             ClampToByte(b / n));
  return fp;
}

Result<std::vector<ShotFingerprint>> ComputeAllShotFingerprints(
    const VideoSignatures& signatures, const std::vector<Shot>& shots,
    const MotionOptions& motion_options) {
  std::vector<ShotFingerprint> out;
  out.reserve(shots.size());
  for (const Shot& shot : shots) {
    VDB_ASSIGN_OR_RETURN(
        ShotFingerprint fp,
        ComputeShotFingerprint(signatures, shot, motion_options));
    out.push_back(fp);
  }
  return out;
}

double FingerprintDistance(const ShotFingerprint& a, const ShotFingerprint& b,
                           const FingerprintWeights& weights) {
  double d_dv = a.variances.Dv() - b.variances.Dv();
  double d_ba =
      std::sqrt(a.variances.var_ba) - std::sqrt(b.variances.var_ba);
  double distance =
      weights.variance_weight * std::sqrt(d_dv * d_dv + d_ba * d_ba);

  distance += weights.color_weight *
              MaxChannelDifference(a.mean_sign_ba, b.mean_sign_ba) / 256.0;

  CameraMotionGroup ga = MotionGroup(a.motion);
  CameraMotionGroup gb = MotionGroup(b.motion);
  if (ga != gb) {
    bool soft = ga == CameraMotionGroup::kComplex ||
                gb == CameraMotionGroup::kComplex;
    distance += soft ? weights.motion_weight * 0.5 : weights.motion_weight;
  }
  return distance;
}

void FingerprintIndex::Add(int video_id, int shot_index,
                           const ShotFingerprint& fingerprint) {
  entries_.push_back(
      FingerprintMatch{video_id, shot_index, fingerprint, 0.0});
}

void FingerprintIndex::AddVideo(
    int video_id, const std::vector<ShotFingerprint>& fingerprints) {
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    Add(video_id, static_cast<int>(i), fingerprints[i]);
  }
}

std::vector<FingerprintMatch> FingerprintIndex::QueryTopK(
    const ShotFingerprint& query, int k, const FingerprintWeights& weights,
    int exclude_video, int exclude_shot) const {
  std::vector<FingerprintMatch> scored;
  scored.reserve(entries_.size());
  for (const FingerprintMatch& e : entries_) {
    if (e.video_id == exclude_video && e.shot_index == exclude_shot) {
      continue;
    }
    FingerprintMatch m = e;
    m.distance = FingerprintDistance(query, e.fingerprint, weights);
    scored.push_back(m);
  }
  int keep = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const FingerprintMatch& a, const FingerprintMatch& b) {
                      return a.distance < b.distance;
                    });
  scored.resize(static_cast<size_t>(keep));
  return scored;
}

}  // namespace vdb
