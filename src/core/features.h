#ifndef VDB_CORE_FEATURES_H_
#define VDB_CORE_FEATURES_H_

#include <vector>

#include "core/extractor.h"
#include "core/shot.h"
#include "util/result.h"

namespace vdb {

// The paper's per-shot feature vector (Section 4.1): the statistical
// variances of the background-area and object-area signs across the shot's
// frames. Var^BA == 0 means the background never changes; Var^OA == 0 means
// the object area never changes; larger values mean more change.
struct ShotFeatures {
  double var_ba = 0.0;  // Equation 3
  double var_oa = 0.0;  // Equation 5

  // D^v = sqrt(Var^BA) - sqrt(Var^OA) (Section 4.2).
  double Dv() const;
};

// Computes Var for one channel sequence using the paper's formulas: the
// mean divides by N (Eq. 4) while the squared deviations divide by N - 1
// (Eq. 3, divisor l - k). Signs are pixels; the per-channel variances are
// averaged into one scalar. Single-frame shots have zero variance.
double SignVariance(const std::vector<PixelRGB>& signs);

// Features for the shot `shot` of a video with signatures `signatures`.
Result<ShotFeatures> ComputeShotFeatures(const VideoSignatures& signatures,
                                         const Shot& shot);

// Features for every shot.
Result<std::vector<ShotFeatures>> ComputeAllShotFeatures(
    const VideoSignatures& signatures, const std::vector<Shot>& shots);

}  // namespace vdb

#endif  // VDB_CORE_FEATURES_H_
