#include "core/shot.h"

#include <cstddef>

namespace vdb {

std::vector<Shot> ShotsFromBoundaries(const std::vector<int>& boundaries,
                                      int frame_count) {
  std::vector<Shot> shots;
  if (frame_count <= 0) return shots;
  int start = 0;
  for (int b : boundaries) {
    if (b <= start || b >= frame_count) continue;
    shots.push_back(Shot{start, b - 1});
    start = b;
  }
  shots.push_back(Shot{start, frame_count - 1});
  return shots;
}

std::vector<int> BoundariesFromShots(const std::vector<Shot>& shots) {
  std::vector<int> boundaries;
  for (size_t i = 1; i < shots.size(); ++i) {
    boundaries.push_back(shots[i].start_frame);
  }
  return boundaries;
}

}  // namespace vdb
