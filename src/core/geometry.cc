#include "core/geometry.h"

#include <cmath>

#include "util/string_util.h"

namespace vdb {

int SizeSetElement(int j) {
  VDB_CHECK(j >= 1) << "size set index " << j;
  // s_1 = 1; s_j = 2^(j+1) - 3 for all j >= 1.
  return (1 << (j + 1)) - 3;
}

bool IsSizeSetElement(int value) {
  if (value < 1) return false;
  for (int j = 1;; ++j) {
    int s = SizeSetElement(j);
    if (s == value) return true;
    if (s > value) return false;
  }
}

int SnapToSizeSet(int estimate) {
  VDB_CHECK(estimate >= 1) << "size estimate " << estimate;
  // j = 2 + floor(log2((x + 3) / 6)); values below 3 map to j = 1.
  double ratio = (estimate + 3) / 6.0;
  int j;
  if (ratio < 1.0) {
    j = 1;
  } else {
    j = 2 + static_cast<int>(std::floor(std::log2(ratio)));
  }
  return SizeSetElement(j);
}

Result<AreaGeometry> ComputeAreaGeometry(int width, int height) {
  if (width < 10 || height < 10) {
    return Status::InvalidArgument(
        StrFormat("frame %dx%d too small for background tracking "
                  "(need at least 10x10)",
                  width, height));
  }
  // The Π shape needs room below the top bar for the FOA: h' = r - w' and
  // b' = c - 2w' must stay positive (w' = floor(c/10)).
  if (height <= width / 10) {
    return Status::InvalidArgument(
        StrFormat("frame %dx%d too wide for the Π-shaped background area "
                  "(height must exceed width/10)",
                  width, height));
  }
  AreaGeometry geom;
  geom.frame_width = width;
  geom.frame_height = height;
  geom.w_estimate = width / 10;
  geom.b_estimate = width - 2 * geom.w_estimate;
  geom.h_estimate = height - geom.w_estimate;
  geom.l_estimate = width + 2 * geom.h_estimate;

  geom.w = SnapToSizeSet(geom.w_estimate);
  geom.b = SnapToSizeSet(geom.b_estimate);
  geom.h = SnapToSizeSet(geom.h_estimate);
  geom.l = SnapToSizeSet(geom.l_estimate);
  return geom;
}

Result<Frame> ExtractNaturalTba(const Frame& frame,
                                const AreaGeometry& geom) {
  if (frame.width() != geom.frame_width ||
      frame.height() != geom.frame_height) {
    return Status::InvalidArgument(StrFormat(
        "frame %dx%d does not match geometry %dx%d", frame.width(),
        frame.height(), geom.frame_width, geom.frame_height));
  }
  int c = geom.frame_width;
  int wp = geom.w_estimate;
  int hp = geom.h_estimate;
  int lp = geom.l_estimate;

  Frame tba(lp, wp);
  // Left column (x in [0, wp), y in [wp, r)), rotated outward: pixels
  // nearest the top bar land nearest the bar's left edge.
  for (int d = 0; d < hp; ++d) {
    for (int x = 0; x < wp; ++x) {
      tba.at_unchecked(hp - 1 - d, x) = frame.at_unchecked(x, wp + d);
    }
  }
  // Top bar occupies the middle of the strip.
  for (int y = 0; y < wp; ++y) {
    for (int x = 0; x < c; ++x) {
      tba.at_unchecked(hp + x, y) = frame.at_unchecked(x, y);
    }
  }
  // Right column, rotated outward.
  for (int d = 0; d < hp; ++d) {
    for (int x = 0; x < wp; ++x) {
      tba.at_unchecked(hp + c + d, x) = frame.at_unchecked(c - wp + x, wp + d);
    }
  }
  return tba;
}

Result<Frame> ExtractTba(const Frame& frame, const AreaGeometry& geom) {
  VDB_ASSIGN_OR_RETURN(Frame natural, ExtractNaturalTba(frame, geom));
  return ResizeNearest(natural, geom.l, geom.w);
}

Rect FoaRect(const AreaGeometry& geom) {
  return Rect{geom.w_estimate, geom.w_estimate, geom.b_estimate,
              geom.h_estimate};
}

Result<Frame> ExtractFoa(const Frame& frame, const AreaGeometry& geom) {
  if (frame.width() != geom.frame_width ||
      frame.height() != geom.frame_height) {
    return Status::InvalidArgument(StrFormat(
        "frame %dx%d does not match geometry %dx%d", frame.width(),
        frame.height(), geom.frame_width, geom.frame_height));
  }
  VDB_ASSIGN_OR_RETURN(Frame natural, Crop(frame, FoaRect(geom)));
  return ResizeNearest(natural, geom.b, geom.h);
}

}  // namespace vdb
