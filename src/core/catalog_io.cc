#include "core/catalog_io.h"

#include <cstring>
#include <fstream>

#include "util/binary_io.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "video/video_io.h"

namespace vdb {
namespace {

// "02": the full signature_ba line is persisted per frame (the frame-index
// tokenizer's input), not just the 1-pixel sign summaries. A catalog that
// survives a round trip can therefore rebuild its frame index.
constexpr char kMagic[8] = {'V', 'D', 'B', 'C', 'A', 'T', '0', '2'};
constexpr uint32_t kMaxVideos = 1 << 20;
constexpr uint32_t kMaxFrames = 1 << 24;
constexpr uint32_t kMaxShots = 1 << 20;
constexpr uint32_t kMaxNodes = 1 << 21;

void PutPixel(BinaryWriter* w, const PixelRGB& p) {
  w->PutU8(p.r);
  w->PutU8(p.g);
  w->PutU8(p.b);
}

Result<PixelRGB> GetPixel(BinaryReader* r, const char* what) {
  VDB_ASSIGN_OR_RETURN(uint8_t red, r->GetU8(what));
  VDB_ASSIGN_OR_RETURN(uint8_t green, r->GetU8(what));
  VDB_ASSIGN_OR_RETURN(uint8_t blue, r->GetU8(what));
  return PixelRGB(red, green, blue);
}

}  // namespace

void SerializeCatalogEntry(const CatalogEntry& entry, BinaryWriter* w) {
  w->PutString(entry.name);
  w->PutU32(static_cast<uint32_t>(entry.classification.genre_ids.size()));
  for (int g : entry.classification.genre_ids) {
    w->PutI32(g);
  }
  w->PutI32(entry.classification.form_id);
  w->PutDouble(entry.fps);
  w->PutI32(entry.frame_count);
  w->PutI32(entry.signatures.geometry.frame_width);
  w->PutI32(entry.signatures.geometry.frame_height);

  w->PutU32(static_cast<uint32_t>(entry.signatures.frames.size()));
  for (const FrameSignature& fs : entry.signatures.frames) {
    PutPixel(w, fs.sign_ba);
    PutPixel(w, fs.sign_oa);
    w->PutU32(static_cast<uint32_t>(fs.signature_ba.size()));
    for (const PixelRGB& pixel : fs.signature_ba) {
      PutPixel(w, pixel);
    }
  }

  w->PutU32(static_cast<uint32_t>(entry.shots.size()));
  for (const Shot& shot : entry.shots) {
    w->PutI32(shot.start_frame);
    w->PutI32(shot.end_frame);
  }
  for (const ShotFeatures& f : entry.features) {
    w->PutDouble(f.var_ba);
    w->PutDouble(f.var_oa);
  }

  w->PutU64(static_cast<uint64_t>(entry.sbd_stats.stage1_same));
  w->PutU64(static_cast<uint64_t>(entry.sbd_stats.stage2_same));
  w->PutU64(static_cast<uint64_t>(entry.sbd_stats.stage3_same));
  w->PutU64(static_cast<uint64_t>(entry.sbd_stats.stage3_boundary));

  const SceneTree& tree = entry.scene_tree;
  w->PutI32(tree.root());
  w->PutU32(static_cast<uint32_t>(tree.node_count()));
  for (const SceneNode& node : tree.nodes()) {
    w->PutI32(node.parent);
    w->PutI32(node.level);
    w->PutI32(node.shot_index);
    w->PutI32(node.representative_frame);
    w->PutU32(static_cast<uint32_t>(node.children.size()));
    for (int child : node.children) {
      w->PutI32(child);
    }
  }
}

Result<CatalogEntry> DeserializeCatalogEntry(BinaryReader* r) {
  CatalogEntry entry;
  VDB_ASSIGN_OR_RETURN(entry.name, r->GetString("video name", 1 << 16));
  VDB_ASSIGN_OR_RETURN(uint32_t genre_count, r->GetU32("genre count"));
  if (genre_count > 1024) {
    return Status::Corruption(
        StrFormat("implausible genre count %u", genre_count));
  }
  entry.classification.genre_ids.resize(genre_count);
  for (uint32_t g = 0; g < genre_count; ++g) {
    VDB_ASSIGN_OR_RETURN(entry.classification.genre_ids[g],
                         r->GetI32("genre id"));
  }
  VDB_ASSIGN_OR_RETURN(entry.classification.form_id, r->GetI32("form id"));
  VDB_ASSIGN_OR_RETURN(entry.fps, r->GetDouble("fps"));
  VDB_ASSIGN_OR_RETURN(entry.frame_count, r->GetI32("frame count"));
  VDB_ASSIGN_OR_RETURN(int width, r->GetI32("frame width"));
  VDB_ASSIGN_OR_RETURN(int height, r->GetI32("frame height"));
  VDB_ASSIGN_OR_RETURN(entry.signatures.geometry,
                       ComputeAreaGeometry(width, height));

  VDB_ASSIGN_OR_RETURN(uint32_t sign_count, r->GetU32("sign count"));
  if (sign_count > kMaxFrames ||
      static_cast<int>(sign_count) != entry.frame_count) {
    return Status::Corruption(
        StrFormat("sign count %u does not match %d frames", sign_count,
                  entry.frame_count));
  }
  entry.signatures.frames.resize(sign_count);
  for (FrameSignature& fs : entry.signatures.frames) {
    VDB_ASSIGN_OR_RETURN(fs.sign_ba, GetPixel(r, "sign BA"));
    VDB_ASSIGN_OR_RETURN(fs.sign_oa, GetPixel(r, "sign OA"));
    VDB_ASSIGN_OR_RETURN(uint32_t line_length, r->GetU32("signature length"));
    if (line_length > (1u << 12)) {
      return Status::Corruption(
          StrFormat("implausible signature length %u", line_length));
    }
    fs.signature_ba.resize(line_length);
    for (PixelRGB& pixel : fs.signature_ba) {
      VDB_ASSIGN_OR_RETURN(pixel, GetPixel(r, "signature pixel"));
    }
  }

  VDB_ASSIGN_OR_RETURN(uint32_t shot_count, r->GetU32("shot count"));
  if (shot_count > kMaxShots) {
    return Status::Corruption(
        StrFormat("implausible shot count %u", shot_count));
  }
  entry.shots.resize(shot_count);
  for (Shot& shot : entry.shots) {
    VDB_ASSIGN_OR_RETURN(shot.start_frame, r->GetI32("shot start"));
    VDB_ASSIGN_OR_RETURN(shot.end_frame, r->GetI32("shot end"));
    if (shot.start_frame < 0 || shot.end_frame >= entry.frame_count ||
        shot.start_frame > shot.end_frame) {
      return Status::Corruption(
          StrFormat("shot [%d,%d] outside video of %d frames",
                    shot.start_frame, shot.end_frame, entry.frame_count));
    }
  }
  entry.features.resize(shot_count);
  for (ShotFeatures& f : entry.features) {
    VDB_ASSIGN_OR_RETURN(f.var_ba, r->GetDouble("var BA"));
    VDB_ASSIGN_OR_RETURN(f.var_oa, r->GetDouble("var OA"));
  }

  VDB_ASSIGN_OR_RETURN(uint64_t s1, r->GetU64("stage1"));
  VDB_ASSIGN_OR_RETURN(uint64_t s2, r->GetU64("stage2"));
  VDB_ASSIGN_OR_RETURN(uint64_t s3, r->GetU64("stage3 same"));
  VDB_ASSIGN_OR_RETURN(uint64_t s3b, r->GetU64("stage3 boundary"));
  entry.sbd_stats.stage1_same = static_cast<long>(s1);
  entry.sbd_stats.stage2_same = static_cast<long>(s2);
  entry.sbd_stats.stage3_same = static_cast<long>(s3);
  entry.sbd_stats.stage3_boundary = static_cast<long>(s3b);

  VDB_ASSIGN_OR_RETURN(int root, r->GetI32("tree root"));
  VDB_ASSIGN_OR_RETURN(uint32_t node_count, r->GetU32("node count"));
  if (node_count > kMaxNodes) {
    return Status::Corruption(
        StrFormat("implausible node count %u", node_count));
  }
  std::vector<SceneNode> nodes(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    SceneNode& node = nodes[i];
    node.id = static_cast<int>(i);
    VDB_ASSIGN_OR_RETURN(node.parent, r->GetI32("node parent"));
    VDB_ASSIGN_OR_RETURN(node.level, r->GetI32("node level"));
    VDB_ASSIGN_OR_RETURN(node.shot_index, r->GetI32("node shot"));
    VDB_ASSIGN_OR_RETURN(node.representative_frame,
                         r->GetI32("node rep frame"));
    VDB_ASSIGN_OR_RETURN(uint32_t child_count, r->GetU32("child count"));
    if (child_count > node_count) {
      return Status::Corruption("node child list larger than tree");
    }
    node.children.resize(child_count);
    for (uint32_t c = 0; c < child_count; ++c) {
      VDB_ASSIGN_OR_RETURN(node.children[c], r->GetI32("child id"));
    }
  }
  VDB_ASSIGN_OR_RETURN(
      entry.scene_tree,
      SceneTree::FromParts(std::move(nodes), root,
                           static_cast<int>(shot_count)));
  return entry;
}

Status SaveCatalog(const VideoDatabase& db, const std::string& path) {
  BinaryWriter payload;
  payload.PutU32(static_cast<uint32_t>(db.video_count()));
  for (int id = 0; id < db.video_count(); ++id) {
    VDB_ASSIGN_OR_RETURN(const CatalogEntry* entry, db.GetEntry(id));
    SerializeCatalogEntry(*entry, &payload);
  }

  const std::string& body = payload.buffer();
  std::string file;
  file.reserve(sizeof(kMagic) + 4 + body.size());
  file.append(kMagic, sizeof(kMagic));
  BinaryWriter header;
  header.PutU32(Fnv1a32(reinterpret_cast<const uint8_t*>(body.data()),
                        body.size()));
  file += header.buffer();
  file += body;
  // Temp + fsync + rename: a crash mid-save can no longer destroy the only
  // copy of the catalog — readers see the old file or the complete new one.
  return WriteFileAtomic(path, file, /*hook=*/nullptr, "catalog");
}

Status LoadCatalog(const std::string& path, VideoDatabase* db) {
  if (db == nullptr) {
    return Status::InvalidArgument("null database");
  }
  if (db->video_count() != 0) {
    return Status::FailedPrecondition(
        "LoadCatalog requires an empty database");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (contents.size() < sizeof(kMagic) + 4 ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic; not a .vdbcat catalog: " + path);
  }
  BinaryReader reader(
      std::string_view(contents).substr(sizeof(kMagic)));
  VDB_ASSIGN_OR_RETURN(uint32_t stored_checksum,
                       reader.GetU32("checksum"));
  std::string_view body =
      std::string_view(contents).substr(sizeof(kMagic) + 4);
  uint32_t actual = Fnv1a32(reinterpret_cast<const uint8_t*>(body.data()),
                            body.size());
  if (actual != stored_checksum) {
    return Status::Corruption(
        StrFormat("catalog checksum mismatch (stored %08x, actual %08x)",
                  stored_checksum, actual));
  }

  BinaryReader r(body);
  VDB_ASSIGN_OR_RETURN(uint32_t video_count, r.GetU32("video count"));
  if (video_count > kMaxVideos) {
    return Status::Corruption(
        StrFormat("implausible video count %u", video_count));
  }
  for (uint32_t v = 0; v < video_count; ++v) {
    VDB_ASSIGN_OR_RETURN(CatalogEntry entry, DeserializeCatalogEntry(&r));
    VDB_RETURN_IF_ERROR(db->Restore(std::move(entry)).status());
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after catalog payload");
  }
  return Status::Ok();
}

}  // namespace vdb
