#include "core/quantized_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace vdb {

QuantizedVarianceIndex::QuantizedVarianceIndex()
    : QuantizedVarianceIndex(Options()) {}

QuantizedVarianceIndex::QuantizedVarianceIndex(Options options)
    : options_(options) {
  VDB_CHECK(options_.dv_cell > 0 && options_.ba_cell > 0)
      << "cell sides must be positive";
}

QuantizedVarianceIndex::CellKey QuantizedVarianceIndex::KeyFor(
    double dv, double sqrt_ba) const {
  CellKey key;
  key.dv = static_cast<long>(std::floor(dv / options_.dv_cell));
  key.ba = static_cast<long>(std::floor(sqrt_ba / options_.ba_cell));
  return key;
}

void QuantizedVarianceIndex::Add(const IndexEntry& entry) {
  cells_[KeyFor(entry.Dv(), entry.SqrtVarBa())].push_back(entry);
  ++size_;
}

void QuantizedVarianceIndex::AddVideo(
    int video_id, const std::vector<ShotFeatures>& features) {
  for (size_t i = 0; i < features.size(); ++i) {
    Add(IndexEntry{video_id, static_cast<int>(i), features[i].var_ba,
                   features[i].var_oa});
  }
}

std::vector<QueryMatch> QuantizedVarianceIndex::Query(
    const VarianceQuery& query) const {
  double q_dv = std::sqrt(query.var_ba) - std::sqrt(query.var_oa);
  double q_ba = std::sqrt(query.var_ba);
  CellKey centre = KeyFor(q_dv, q_ba);

  std::vector<QueryMatch> matches;
  int radius = options_.probe_neighbors ? 1 : 0;
  for (long ddv = -radius; ddv <= radius; ++ddv) {
    for (long dba = -radius; dba <= radius; ++dba) {
      auto it = cells_.find(CellKey{centre.dv + ddv, centre.ba + dba});
      if (it == cells_.end()) continue;
      for (const IndexEntry& e : it->second) {
        double d_dv = e.Dv() - q_dv;
        double d_ba = e.SqrtVarBa() - q_ba;
        matches.push_back(
            QueryMatch{e, std::sqrt(d_dv * d_dv + d_ba * d_ba)});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.distance < b.distance;
            });
  return matches;
}

}  // namespace vdb
