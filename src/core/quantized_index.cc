#include "core/quantized_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace vdb {

QuantizedVarianceIndex::QuantizedVarianceIndex()
    : QuantizedVarianceIndex(Options()) {}

QuantizedVarianceIndex::QuantizedVarianceIndex(Options options)
    : options_(options) {
  VDB_CHECK(options_.dv_cell > 0 && options_.ba_cell > 0)
      << "cell sides must be positive";
}

QuantizedVarianceIndex::CellKey QuantizedVarianceIndex::KeyFor(
    double dv, double sqrt_ba) const {
  CellKey key;
  key.dv = static_cast<long>(std::floor(dv / options_.dv_cell));
  key.ba = static_cast<long>(std::floor(sqrt_ba / options_.ba_cell));
  return key;
}

void QuantizedVarianceIndex::Add(const IndexEntry& entry) {
  cells_[KeyFor(entry.Dv(), entry.SqrtVarBa())].push_back(entry);
  ++size_;
}

void QuantizedVarianceIndex::AddVideo(
    int video_id, const std::vector<ShotFeatures>& features) {
  for (size_t i = 0; i < features.size(); ++i) {
    Add(IndexEntry{video_id, static_cast<int>(i), features[i].var_ba,
                   features[i].var_oa});
  }
}

std::vector<QueryMatch> QuantizedVarianceIndex::Query(
    const VarianceQuery& query, int* cells_probed) const {
  double q_dv = std::sqrt(query.var_ba) - std::sqrt(query.var_oa);
  double q_ba = std::sqrt(query.var_ba);
  CellKey centre = KeyFor(q_dv, q_ba);

  // Cost-aware probe window: only the cells the +-alpha x +-beta band
  // actually overlaps. A query at a cell's centre probes just that cell;
  // one near a border adds the one neighbour the band crosses into, per
  // dimension — never the full 3x3 block.
  long dv_lo = centre.dv;
  long dv_hi = centre.dv;
  long ba_lo = centre.ba;
  long ba_hi = centre.ba;
  if (options_.probe_neighbors) {
    double alpha = std::max(query.alpha, 0.0);
    double beta = std::max(query.beta, 0.0);
    dv_lo = static_cast<long>(std::floor((q_dv - alpha) / options_.dv_cell));
    dv_hi = static_cast<long>(std::floor((q_dv + alpha) / options_.dv_cell));
    ba_lo = static_cast<long>(std::floor((q_ba - beta) / options_.ba_cell));
    ba_hi = static_cast<long>(std::floor((q_ba + beta) / options_.ba_cell));
  }

  std::vector<QueryMatch> matches;
  int probed = 0;
  for (long dv = dv_lo; dv <= dv_hi; ++dv) {
    for (long ba = ba_lo; ba <= ba_hi; ++ba) {
      ++probed;
      auto it = cells_.find(CellKey{dv, ba});
      if (it == cells_.end()) continue;
      for (const IndexEntry& e : it->second) {
        double d_dv = e.Dv() - q_dv;
        double d_ba = e.SqrtVarBa() - q_ba;
        matches.push_back(
            QueryMatch{e, std::sqrt(d_dv * d_dv + d_ba * d_ba)});
      }
    }
  }
  if (cells_probed != nullptr) {
    *cells_probed = probed;
  }
  std::sort(matches.begin(), matches.end(),
            [](const QueryMatch& a, const QueryMatch& b) {
              return a.distance < b.distance;
            });
  return matches;
}

}  // namespace vdb
