// AVX2 dispatch level. Compiled with -mavx2 in its own translation unit;
// only reached when CPUID reports AVX2 (core/kernels/simd.cc).
//
// Same fixed-point math as the scalar level at 32 byte lanes (16 u16
// lanes where the 5-tap sum needs headroom), so the output is
// byte-identical; only the schedule changes. All loads unaligned; tails
// use an overlapped final vector where outputs are pure and non-aliasing
// (recomputing the same bytes is exact), the inline scalar bodies
// elsewhere.

#include "core/kernels/kernel_ops.h"

#ifdef VDB_KERNELS_HAVE_AVX2

#include <immintrin.h>

namespace vdb {
namespace kernels {
namespace {

// pmaddubsw tap coefficients. maddubs(x, 0x0401) computes
// x[2j]*1 + x[2j+1]*4 per u16 lane (the low constant byte multiplies the
// even source byte), maddubs(x, 0x0406) computes x[2j]*6 + x[2j+1]*4.
// Both partial sums (max 1275 and 2550) and the full 5-tap sum (max 4088)
// fit i16 with no saturation, so the math stays exact.
constexpr int16_t kCoef14 = 0x0401;
constexpr int16_t kCoef64 = 0x0406;

// One 32-byte column slab of the vertical 5-tap at byte offset x.
// unpacklo/hi interleave within each 128-bit lane and packus_epi16
// re-packs within each lane, so the pair is its own inverse — unlike the
// widen-with-cvtepu8 formulation, no cross-lane permute is needed.
inline void ReduceColumns32(const uint8_t* r0, const uint8_t* r1,
                            const uint8_t* r2, const uint8_t* r3,
                            const uint8_t* r4, uint8_t* o, int x) {
  const __m256i c14 = _mm256_set1_epi16(kCoef14);
  const __m256i c64 = _mm256_set1_epi16(kCoef64);
  const __m256i bias = _mm256_set1_epi16(8);
  const __m256i zero = _mm256_setzero_si256();
  __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + x));
  __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + x));
  __m256i v2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r2 + x));
  __m256i v3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r3 + x));
  __m256i v4 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r4 + x));
  // Interleaving rows 0/1 and 2/3 pairs each output column's taps into
  // adjacent bytes: one maddubs per pair computes p0 + 4*p1 and
  // 6*p2 + 4*p3 for eight columns at once.
  __m256i lo = _mm256_add_epi16(
      _mm256_maddubs_epi16(_mm256_unpacklo_epi8(v0, v1), c14),
      _mm256_maddubs_epi16(_mm256_unpacklo_epi8(v2, v3), c64));
  lo = _mm256_add_epi16(lo, _mm256_unpacklo_epi8(v4, zero));
  lo = _mm256_srli_epi16(_mm256_add_epi16(lo, bias), 4);
  __m256i hi = _mm256_add_epi16(
      _mm256_maddubs_epi16(_mm256_unpackhi_epi8(v0, v1), c14),
      _mm256_maddubs_epi16(_mm256_unpackhi_epi8(v2, v3), c64));
  hi = _mm256_add_epi16(hi, _mm256_unpackhi_epi8(v4, zero));
  hi = _mm256_srli_epi16(_mm256_add_epi16(hi, bias), 4);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + x),
                      _mm256_packus_epi16(lo, hi));
}

void ReduceRowsOnceAvx2(const uint8_t* in, int width, int in_rows,
                        uint8_t* out) {
  const int out_rows = (in_rows - 3) / 2;
  for (int i = 0; i < out_rows; ++i) {
    const uint8_t* r0 = in + static_cast<size_t>(2 * i) * width;
    const uint8_t* r1 = r0 + width;
    const uint8_t* r2 = r1 + width;
    const uint8_t* r3 = r2 + width;
    const uint8_t* r4 = r3 + width;
    uint8_t* o = out + static_cast<size_t>(i) * width;
    int x = 0;
    for (; x + 32 <= width; x += 32) {
      ReduceColumns32(r0, r1, r2, r3, r4, o, x);
    }
    if (x < width) {
      if (width >= 32) {
        // Overlapped tail: redo the last full vector instead of a scalar
        // loop. Each output byte is a pure function of the same five input
        // bytes, and out does not alias in, so recomputing a suffix of the
        // previous slab stores identical values.
        ReduceColumns32(r0, r1, r2, r3, r4, o, width - 32);
      } else {
        for (; x < width; ++x) {
          o[x] = Reduce5(r0[x], r1[x], r2[x], r3[x], r4[x]);
        }
      }
    }
  }
}

// Horizontal in-place level, 16 outputs per iteration. Outputs i..i+15
// read row[2i .. 2i+34]; the three 32-byte loads at 2i, 2i+2, 2i+4 expose
// the taps as adjacent byte pairs ready for maddubs and touch up to
// row[2i+35], so the vector path requires 2i+36 <= n. In-place is safe:
// loads precede the store, earlier stores end at i-1 < 2i.
void ReduceRowInPlaceAvx2(uint8_t* row, int n) {
  const int out = (n - 3) / 2;
  const __m256i c14 = _mm256_set1_epi16(kCoef14);
  const __m256i c64 = _mm256_set1_epi16(kCoef64);
  const __m256i bias = _mm256_set1_epi16(8);
  const __m256i lo_mask = _mm256_set1_epi16(0x00FF);
  int i = 0;
  for (; i + 16 <= out && 2 * i + 36 <= n; i += 16) {
    __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * i + 2));
    __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 2 * i + 4));
    // The stride-2 taps are already adjacent byte pairs of the overlapping
    // loads: maddubs on `a` gives p0 + 4*p1 per output, on `b` (offset 2)
    // gives 6*p2 + 4*p3, and the even bytes of `c` (offset 4) supply p4.
    __m256i s = _mm256_add_epi16(_mm256_maddubs_epi16(a, c14),
                                 _mm256_maddubs_epi16(b, c64));
    s = _mm256_add_epi16(s, _mm256_and_si256(c, lo_mask));
    s = _mm256_srli_epi16(_mm256_add_epi16(s, bias), 4);
    // Within-lane pack leaves the 16 result bytes in 64-bit chunks q0/q2;
    // the permute gathers them into the low 128 bits.
    __m256i packed = _mm256_packus_epi16(s, s);
    packed = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i),
                     _mm256_castsi256_si128(packed));
  }
  for (; i < out; ++i) {
    const uint8_t* p = row + 2 * i;
    row[i] = Reduce5(p[0], p[1], p[2], p[3], p[4]);
  }
}

// 16 pixels = 48 bytes per 128-bit block via three pshufb-gathers per
// channel (VEX-encoded here); the AoS->planar pattern is inherently a
// byte shuffle, and AVX2's cross-lane shuffles buy nothing over two
// 128-bit blocks per iteration.
inline void Deinterleave16(const uint8_t* p, uint8_t* r, uint8_t* g,
                           uint8_t* b) {
  const __m128i m0r = _mm_setr_epi8(0, 3, 6, 9, 12, 15, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1r = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, 2, 5, 8, 11, 14,
                                    -1, -1, -1, -1, -1);
  const __m128i m2r = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, 1, 4, 7, 10, 13);
  const __m128i m0g = _mm_setr_epi8(1, 4, 7, 10, 13, -1, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1g = _mm_setr_epi8(-1, -1, -1, -1, -1, 0, 3, 6, 9, 12, 15,
                                    -1, -1, -1, -1, -1);
  const __m128i m2g = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, 2, 5, 8, 11, 14);
  const __m128i m0b = _mm_setr_epi8(2, 5, 8, 11, 14, -1, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1b = _mm_setr_epi8(-1, -1, -1, -1, -1, 1, 4, 7, 10, 13, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m2b = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    0, 3, 6, 9, 12, 15);
  __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(r),
                   _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0r),
                                             _mm_shuffle_epi8(v1, m1r)),
                                _mm_shuffle_epi8(v2, m2r)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(g),
                   _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0g),
                                             _mm_shuffle_epi8(v1, m1g)),
                                _mm_shuffle_epi8(v2, m2g)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(b),
                   _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0b),
                                             _mm_shuffle_epi8(v1, m1b)),
                                _mm_shuffle_epi8(v2, m2b)));
}

void DeinterleaveRgbAvx2(const PixelRGB* src, int n, uint8_t* r, uint8_t* g,
                         uint8_t* b) {
  const uint8_t* s = reinterpret_cast<const uint8_t*>(src);
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const uint8_t* p = s + static_cast<size_t>(3) * i;
    Deinterleave16(p, r + i, g + i, b + i);
    Deinterleave16(p + 48, r + i + 16, g + i + 16, b + i + 16);
  }
  if (i + 16 <= n) {
    Deinterleave16(s + static_cast<size_t>(3) * i, r + i, g + i, b + i);
    i += 16;
  }
  if (i < n) {
    if (n >= 16) {
      // Overlapped tail: the planar outputs never alias the packed input,
      // so redoing the last full block stores identical values.
      Deinterleave16(s + static_cast<size_t>(3) * (n - 16), r + n - 16,
                     g + n - 16, b + n - 16);
    } else {
      DeinterleaveRgbScalar(src + i, n - i, r + i, g + i, b + i);
    }
  }
}

int MatchMaskTotalAvx2(const uint8_t* ar, const uint8_t* ag,
                       const uint8_t* ab, const uint8_t* br,
                       const uint8_t* bg, const uint8_t* bb, int overlap,
                       uint8_t tol, uint8_t* m) {
  const __m256i tolv = _mm256_set1_epi8(static_cast<char>(tol));
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  int i = 0;
  for (; i + 32 <= overlap; i += 32) {
    __m256i var =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ar + i));
    __m256i vbr =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(br + i));
    __m256i vag =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ag + i));
    __m256i vbg =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + i));
    __m256i vab =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ab + i));
    __m256i vbb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bb + i));
    __m256i dr = _mm256_or_si256(_mm256_subs_epu8(var, vbr),
                                 _mm256_subs_epu8(vbr, var));
    __m256i dg = _mm256_or_si256(_mm256_subs_epu8(vag, vbg),
                                 _mm256_subs_epu8(vbg, vag));
    __m256i db = _mm256_or_si256(_mm256_subs_epu8(vab, vbb),
                                 _mm256_subs_epu8(vbb, vab));
    __m256i dm = _mm256_max_epu8(_mm256_max_epu8(dr, dg), db);
    __m256i hit = _mm256_cmpeq_epi8(_mm256_min_epu8(dm, tolv), dm);
    __m256i ones = _mm256_and_si256(hit, one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(m + i), ones);
    // Byte-popcount via psadbw: the 0/1 bytes sum into four u64 lanes.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(ones, zero));
  }
  __m128i sum = _mm_add_epi64(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  // One 128-bit step before the scalar tail: shift overlaps shrink by one
  // pixel per shift, so sub-32 remainders are the common case, not the
  // exception.
  if (i + 16 <= overlap) {
    const __m128i tolv128 = _mm_set1_epi8(static_cast<char>(tol));
    const __m128i one128 = _mm_set1_epi8(1);
    const __m128i zero128 = _mm_setzero_si128();
    __m128i var = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar + i));
    __m128i vbr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(br + i));
    __m128i vag = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ag + i));
    __m128i vbg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bg + i));
    __m128i vab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ab + i));
    __m128i vbb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bb + i));
    __m128i dr =
        _mm_or_si128(_mm_subs_epu8(var, vbr), _mm_subs_epu8(vbr, var));
    __m128i dg =
        _mm_or_si128(_mm_subs_epu8(vag, vbg), _mm_subs_epu8(vbg, vag));
    __m128i db =
        _mm_or_si128(_mm_subs_epu8(vab, vbb), _mm_subs_epu8(vbb, vab));
    __m128i dm = _mm_max_epu8(_mm_max_epu8(dr, dg), db);
    __m128i hit = _mm_cmpeq_epi8(_mm_min_epu8(dm, tolv128), dm);
    __m128i ones = _mm_and_si128(hit, one128);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(m + i), ones);
    sum = _mm_add_epi64(sum, _mm_sad_epu8(ones, zero128));
    i += 16;
  }
  int total = static_cast<int>(_mm_extract_epi64(sum, 0) +
                               _mm_extract_epi64(sum, 1));
  total += MatchMaskTotalScalar(ar + i, ag + i, ab + i, br + i, bg + i,
                                bb + i, overlap - i, tol, m + i);
  return total;
}

}  // namespace

const KernelOps kAvx2Ops = {
    &ReduceRowsOnceAvx2,
    &ReduceRowInPlaceAvx2,
    &DeinterleaveRgbAvx2,
    &MatchMaskTotalAvx2,
};

}  // namespace kernels
}  // namespace vdb

#endif  // VDB_KERNELS_HAVE_AVX2
