#ifndef VDB_CORE_KERNELS_SIMD_H_
#define VDB_CORE_KERNELS_SIMD_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace vdb {

// Runtime SIMD dispatch for the signature kernels (core/kernels.h).
//
// The hot loops — the [1 4 6 4 1]/16 row reduce, the AoS->planar
// deinterleave, and the per-shift match mask — exist in up to three
// hand-written variants, compiled in separate translation units with
// per-file ISA flags (src/core/kernels/{scalar,sse4,avx2}.cc). The CPU is
// probed once, the best compiled-and-supported level is selected, and each
// kernel invocation pays exactly one indirect call through a per-kernel
// function pointer table.
//
// Every variant is **byte-identical** to the scalar reference: the kernels
// are pure fixed-point integer arithmetic (the fixed-point math itself is
// proven exact against the double reference in kernels_test), so widening
// the loop from 1 to 16 or 32 lanes changes the schedule, never a byte.
// tests/core/kernels_simd_test.cc forces each available level and re-runs
// the bit-exactness battery; scripts/check.sh's `simd` leg does the same
// under ASan via the VDB_SIMD override.
//
// Override order: SetSimdLevel() (tests, benches) beats the VDB_SIMD
// environment variable ("scalar", "sse4", "avx2"; read once at first
// kernel use) beats CPUID auto-detection. An unknown or unsupported
// VDB_SIMD value is ignored with a one-time warning on stderr.

// Dispatch levels, ascending. kSse4 is SSE4.1; kAvx2 implies SSE4.1.
enum class SimdLevel { kScalar = 0, kSse4 = 1, kAvx2 = 2 };

// "scalar", "sse4", "avx2".
const char* SimdLevelName(SimdLevel level);

// Inverse of SimdLevelName; kInvalidArgument on anything else.
Result<SimdLevel> ParseSimdLevel(const std::string& name);

// Levels this binary can actually run — compiled in AND supported by the
// host CPU — in ascending order. Always contains kScalar.
const std::vector<SimdLevel>& AvailableSimdLevels();

// The best available level: what dispatch selects absent any override.
SimdLevel DetectedSimdLevel();

// The level the kernels currently dispatch to.
SimdLevel ActiveSimdLevel();

// Forces dispatch to `level` until the next call. kInvalidArgument when
// the level is not available on this host/build (dispatch is unchanged).
// Not meant for concurrent use with in-flight kernels: switching is safe
// (every level computes identical bytes) but benchmarks would misattribute
// the overlap.
Status SetSimdLevel(SimdLevel level);

}  // namespace vdb

#endif  // VDB_CORE_KERNELS_SIMD_H_
