// The scalar dispatch level: the PR-5 kernels exactly as they were, now
// behind the KernelOps table. Compiled at -O3 (see src/core/CMakeLists.txt)
// so GCC's loop vectorizer still auto-vectorizes the inline bodies to
// baseline SSE2 — this level is the floor every host can run and the
// reference the hand-written levels are tested byte-identical against.

#include "core/kernels/kernel_ops.h"

namespace vdb {
namespace kernels {

const KernelOps kScalarOps = {
    &ReduceRowsOnceScalar,
    &ReduceRowInPlaceScalar,
    &DeinterleaveRgbScalar,
    &MatchMaskTotalScalar,
};

}  // namespace kernels
}  // namespace vdb
