#include "core/kernels/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/kernels/kernel_ops.h"
#include "util/logging.h"

namespace vdb {
namespace {

bool HostSupports(SimdLevel level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse4:
      return __builtin_cpu_supports("sse4.1");
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return level == SimdLevel::kScalar;
#endif
}

const kernels::KernelOps* OpsForLevel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kernels::kScalarOps;
    case SimdLevel::kSse4:
#ifdef VDB_KERNELS_HAVE_SSE4
      return &kernels::kSse4Ops;
#else
      return nullptr;
#endif
    case SimdLevel::kAvx2:
#ifdef VDB_KERNELS_HAVE_AVX2
      return &kernels::kAvx2Ops;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool IsAvailable(SimdLevel level) {
  return OpsForLevel(level) != nullptr && HostSupports(level);
}

// Initial selection, run once under the magic-static guard of State():
// best available level, overridden by a valid VDB_SIMD.
SimdLevel InitialLevel() {
  SimdLevel level = DetectedSimdLevel();
  const char* env = std::getenv("VDB_SIMD");
  if (env != nullptr && *env != '\0') {
    Result<SimdLevel> parsed = ParseSimdLevel(env);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "vdb: ignoring VDB_SIMD='%s' (want scalar, sse4 or "
                   "avx2); using %s\n",
                   env, SimdLevelName(level));
    } else if (!IsAvailable(*parsed)) {
      std::fprintf(stderr,
                   "vdb: VDB_SIMD=%s is not available on this host/build; "
                   "using %s\n",
                   env, SimdLevelName(level));
    } else {
      level = *parsed;
    }
  }
  return level;
}

// The single atomic the hot paths read. The level is recovered from the
// table pointer (one pointer, never a torn level/ops pair).
std::atomic<const kernels::KernelOps*>& State() {
  static std::atomic<const kernels::KernelOps*> ops{
      OpsForLevel(InitialLevel())};
  return ops;
}

}  // namespace

namespace kernels {

const KernelOps& ActiveOps() {
  return *State().load(std::memory_order_relaxed);
}

}  // namespace kernels

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse4" || name == "sse4.1") return SimdLevel::kSse4;
  if (name == "avx2") return SimdLevel::kAvx2;
  return Status::InvalidArgument("unknown SIMD level '" + name +
                                 "' (want scalar, sse4 or avx2)");
}

const std::vector<SimdLevel>& AvailableSimdLevels() {
  static const std::vector<SimdLevel> levels = [] {
    std::vector<SimdLevel> out;
    for (SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
      if (IsAvailable(level)) out.push_back(level);
    }
    return out;
  }();
  return levels;
}

SimdLevel DetectedSimdLevel() { return AvailableSimdLevels().back(); }

SimdLevel ActiveSimdLevel() {
  const kernels::KernelOps* ops = State().load(std::memory_order_relaxed);
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse4, SimdLevel::kAvx2}) {
    if (ops == OpsForLevel(level)) return level;
  }
  VDB_CHECK(false) << "active kernel table matches no dispatch level";
  return SimdLevel::kScalar;
}

Status SetSimdLevel(SimdLevel level) {
  const kernels::KernelOps* ops = OpsForLevel(level);
  if (ops == nullptr) {
    return Status::InvalidArgument(
        std::string("SIMD level ") + SimdLevelName(level) +
        " is not compiled into this binary");
  }
  if (!HostSupports(level)) {
    return Status::InvalidArgument(std::string("SIMD level ") +
                                   SimdLevelName(level) +
                                   " is not supported by this CPU");
  }
  State().store(ops, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace vdb
