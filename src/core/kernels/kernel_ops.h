#ifndef VDB_CORE_KERNELS_KERNEL_OPS_H_
#define VDB_CORE_KERNELS_KERNEL_OPS_H_

#include <cstdint>

#include "video/pixel.h"

// Internal seam between the kernel drivers (core/kernels/kernels.cc) and
// the per-ISA translation units. Each dispatch level provides one KernelOps
// table; core/kernels/simd.cc owns the level selection and hands the hot
// paths a table through ActiveOps(). Not installed as public API — include
// core/kernels.h (kernels) or core/kernels/simd.h (dispatch) instead.
//
// Contract shared by every implementation, enforced per level by
// kernels_simd_test:
//  * byte-identical output to the scalar loops below for every input,
//  * no alignment requirements on any pointer (misaligned-safe),
//  * no reads past the documented extents (tail widths below the vector
//    width fall back to the scalar loops).

namespace vdb {
namespace kernels {

struct KernelOps {
  // One vertical [1 4 6 4 1]/16 reduction level over planar rows: `in`
  // holds `in_rows` rows of `width` bytes; writes (in_rows - 3) / 2 rows
  // to `out`. in_rows >= 5; in and out do not overlap.
  void (*reduce_rows_once)(const uint8_t* in, int width, int in_rows,
                           uint8_t* out);

  // One in-place horizontal [1 4 6 4 1]/16 level on a single row: output
  // i draws from row[2i..2i+4], n >= 5 reduces to (n - 3) / 2 values.
  void (*reduce_row_inplace)(uint8_t* row, int n);

  // AoS PixelRGB[n] -> three planar byte arrays.
  void (*deinterleave_rgb)(const PixelRGB* src, int n, uint8_t* r,
                           uint8_t* g, uint8_t* b);

  // Writes m[i] = 1 if max(|ar[i]-br[i]|, |ag[i]-bg[i]|, |ab[i]-bb[i]|)
  // <= tol else 0, for i in [0, overlap); returns the number of ones.
  int (*match_mask_total)(const uint8_t* ar, const uint8_t* ag,
                          const uint8_t* ab, const uint8_t* br,
                          const uint8_t* bg, const uint8_t* bb, int overlap,
                          uint8_t tol, uint8_t* m);
};

extern const KernelOps kScalarOps;
#ifdef VDB_KERNELS_HAVE_SSE4
extern const KernelOps kSse4Ops;
#endif
#ifdef VDB_KERNELS_HAVE_AVX2
extern const KernelOps kAvx2Ops;
#endif

// The table for the currently active dispatch level: one relaxed atomic
// load. Hot paths load it once per kernel invocation.
const KernelOps& ActiveOps();

// ---------------------------------------------------------------------------
// Scalar bodies, inline so the vector TUs compile their own tail copies
// under their own ISA flags. These ARE the PR-5 kernels: kScalarOps wraps
// them verbatim (compiled at -O3 in scalar.cc, where GCC's loop vectorizer
// still auto-vectorizes them to baseline SSE2 — the "scalar" level means
// no hand-written vectors and no post-SSE2 instructions, not no SIMD).

// (p0 + 4*p1 + 6*p2 + 4*p3 + p4 + 8) >> 4 — max sum 16*255 + 8 = 4088, so
// unsigned never overflows and the result is always a valid byte.
inline uint8_t Reduce5(unsigned p0, unsigned p1, unsigned p2, unsigned p3,
                       unsigned p4) {
  return static_cast<uint8_t>((p0 + p4 + 4u * (p1 + p3) + 6u * p2 + 8u) >> 4);
}

inline uint8_t AbsDiffU8(uint8_t x, uint8_t y) {
  return x > y ? static_cast<uint8_t>(x - y) : static_cast<uint8_t>(y - x);
}

inline void ReduceRowsOnceScalar(const uint8_t* in, int width, int in_rows,
                                 uint8_t* out) {
  int out_rows = (in_rows - 3) / 2;
  for (int i = 0; i < out_rows; ++i) {
    const uint8_t* r0 = in + static_cast<size_t>(2 * i) * width;
    const uint8_t* r1 = r0 + width;
    const uint8_t* r2 = r1 + width;
    const uint8_t* r3 = r2 + width;
    const uint8_t* r4 = r3 + width;
    uint8_t* o = out + static_cast<size_t>(i) * width;
    for (int x = 0; x < width; ++x) {
      o[x] = Reduce5(r0[x], r1[x], r2[x], r3[x], r4[x]);
    }
  }
}

// In-place is safe forward: out i writes index i, reads 2i..2i+4, and
// i <= 2i for i >= 0, so a write never clobbers a value a later (or the
// current) window still needs.
inline void ReduceRowInPlaceScalar(uint8_t* row, int n) {
  int out = (n - 3) / 2;
  for (int i = 0; i < out; ++i) {
    const uint8_t* p = row + 2 * i;
    row[i] = Reduce5(p[0], p[1], p[2], p[3], p[4]);
  }
}

inline void DeinterleaveRgbScalar(const PixelRGB* src, int n, uint8_t* r,
                                  uint8_t* g, uint8_t* b) {
  for (int i = 0; i < n; ++i) {
    const PixelRGB& p = src[i];
    r[i] = p.r;
    g[i] = p.g;
    b[i] = p.b;
  }
}

inline int MatchMaskTotalScalar(const uint8_t* ar, const uint8_t* ag,
                                const uint8_t* ab, const uint8_t* br,
                                const uint8_t* bg, const uint8_t* bb,
                                int overlap, uint8_t tol, uint8_t* m) {
  int total = 0;
  for (int i = 0; i < overlap; ++i) {
    uint8_t dr = AbsDiffU8(ar[i], br[i]);
    uint8_t dg = AbsDiffU8(ag[i], bg[i]);
    uint8_t db = AbsDiffU8(ab[i], bb[i]);
    uint8_t d2 = dr > dg ? dr : dg;
    uint8_t dm = d2 > db ? d2 : db;
    uint8_t hit = dm <= tol ? 1 : 0;
    m[i] = hit;
    total += hit;
  }
  return total;
}

}  // namespace kernels
}  // namespace vdb

#endif  // VDB_CORE_KERNELS_KERNEL_OPS_H_
