// SSE4.1 dispatch level. Compiled with -msse4.1 in its own translation
// unit; only reached when CPUID reports SSE4.1 (core/kernels/simd.cc).
//
// All arithmetic is the same fixed-point integer math as the scalar level
// — 8-bit lanes widened to 16 bits where the 5-tap sum (max 4088) needs
// headroom — so the output is byte-identical; only the schedule changes.
// Every load is unaligned (`loadu`); tails use an overlapped final vector
// where outputs are pure and non-aliasing (recomputing the same bytes is
// exact) and fall back to the inline scalar bodies elsewhere, so there
// are no alignment or minimum-size requirements.

#include "core/kernels/kernel_ops.h"

#ifdef VDB_KERNELS_HAVE_SSE4

#include <smmintrin.h>

namespace vdb {
namespace kernels {
namespace {

// pmaddubsw tap coefficients. maddubs(x, 0x0401) computes
// x[2j]*1 + x[2j+1]*4 per u16 lane (the low constant byte multiplies the
// even source byte), maddubs(x, 0x0406) computes x[2j]*6 + x[2j+1]*4.
// Both partial sums (max 1275 and 2550) and the full 5-tap sum (max 4088)
// fit i16 with no saturation, so the math stays exact.
constexpr int16_t kCoef14 = 0x0401;
constexpr int16_t kCoef64 = 0x0406;

// One 16-byte column slab of the vertical 5-tap at byte offset x.
// Interleaving rows 0/1 and 2/3 pairs each output column's taps into
// adjacent bytes: one maddubs per pair computes p0 + 4*p1 and 6*p2 + 4*p3
// for eight columns at once; packus_epi16 undoes the interleave.
inline void ReduceColumns16(const uint8_t* r0, const uint8_t* r1,
                            const uint8_t* r2, const uint8_t* r3,
                            const uint8_t* r4, uint8_t* o, int x) {
  const __m128i c14 = _mm_set1_epi16(kCoef14);
  const __m128i c64 = _mm_set1_epi16(kCoef64);
  const __m128i bias = _mm_set1_epi16(8);
  const __m128i zero = _mm_setzero_si128();
  __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + x));
  __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + x));
  __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + x));
  __m128i v3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + x));
  __m128i v4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r4 + x));
  __m128i lo = _mm_add_epi16(
      _mm_maddubs_epi16(_mm_unpacklo_epi8(v0, v1), c14),
      _mm_maddubs_epi16(_mm_unpacklo_epi8(v2, v3), c64));
  lo = _mm_add_epi16(lo, _mm_unpacklo_epi8(v4, zero));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, bias), 4);
  __m128i hi = _mm_add_epi16(
      _mm_maddubs_epi16(_mm_unpackhi_epi8(v0, v1), c14),
      _mm_maddubs_epi16(_mm_unpackhi_epi8(v2, v3), c64));
  hi = _mm_add_epi16(hi, _mm_unpackhi_epi8(v4, zero));
  hi = _mm_srli_epi16(_mm_add_epi16(hi, bias), 4);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(o + x),
                   _mm_packus_epi16(lo, hi));
}

void ReduceRowsOnceSse4(const uint8_t* in, int width, int in_rows,
                        uint8_t* out) {
  const int out_rows = (in_rows - 3) / 2;
  for (int i = 0; i < out_rows; ++i) {
    const uint8_t* r0 = in + static_cast<size_t>(2 * i) * width;
    const uint8_t* r1 = r0 + width;
    const uint8_t* r2 = r1 + width;
    const uint8_t* r3 = r2 + width;
    const uint8_t* r4 = r3 + width;
    uint8_t* o = out + static_cast<size_t>(i) * width;
    int x = 0;
    for (; x + 16 <= width; x += 16) {
      ReduceColumns16(r0, r1, r2, r3, r4, o, x);
    }
    if (x < width) {
      if (width >= 16) {
        // Overlapped tail: redo the last full vector instead of a scalar
        // loop. Each output byte is a pure function of the same five input
        // bytes, and out does not alias in, so recomputing a suffix of the
        // previous slab stores identical values.
        ReduceColumns16(r0, r1, r2, r3, r4, o, width - 16);
      } else {
        for (; x < width; ++x) {
          o[x] = Reduce5(r0[x], r1[x], r2[x], r3[x], r4[x]);
        }
      }
    }
  }
}

// Horizontal in-place level. Outputs i..i+7 read row[2i .. 2i+18]; three
// unaligned 16-byte loads at 2i, 2i+2 and 2i+4 expose the five taps as
// adjacent byte pairs ready for maddubs. The last byte the loads touch is
// 2i+19, so the vector path requires 2i+20 <= n. In-place is safe: all
// loads of an iteration happen before its store, earlier stores end at
// i-1 < 2i.
void ReduceRowInPlaceSse4(uint8_t* row, int n) {
  const int out = (n - 3) / 2;
  const __m128i c14 = _mm_set1_epi16(kCoef14);
  const __m128i c64 = _mm_set1_epi16(kCoef64);
  const __m128i bias = _mm_set1_epi16(8);
  const __m128i lo_mask = _mm_set1_epi16(0x00FF);
  int i = 0;
  for (; i + 8 <= out && 2 * i + 20 <= n; i += 8) {
    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * i));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * i + 2));
    __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * i + 4));
    // The stride-2 taps are already adjacent byte pairs of the overlapping
    // loads: maddubs on `a` gives p0 + 4*p1 per output, on `b` (offset 2)
    // gives 6*p2 + 4*p3, and the even bytes of `c` (offset 4) supply p4.
    __m128i s = _mm_add_epi16(_mm_maddubs_epi16(a, c14),
                              _mm_maddubs_epi16(b, c64));
    s = _mm_add_epi16(s, _mm_and_si128(c, lo_mask));
    s = _mm_srli_epi16(_mm_add_epi16(s, bias), 4);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(row + i),
                     _mm_packus_epi16(s, s));
  }
  for (; i < out; ++i) {
    const uint8_t* p = row + 2 * i;
    row[i] = Reduce5(p[0], p[1], p[2], p[3], p[4]);
  }
}

// 16 pixels = 48 bytes per iteration via three pshufb-gathers per channel.
// v0 = r0 g0 b0 r1 g1 b1 r2 g2 b2 r3 g3 b3 r4 g4 b4 r5
// v1 = g5 b5 r6 g6 b6 r7 g7 b7 r8 g8 b8 r9 g9 b9 r10 g10
// v2 = b10 r11 g11 b11 r12 g12 b12 r13 g13 b13 r14 g14 b14 r15 g15 b15
void DeinterleaveRgbSse4(const PixelRGB* src, int n, uint8_t* r, uint8_t* g,
                         uint8_t* b) {
  const uint8_t* s = reinterpret_cast<const uint8_t*>(src);
  const __m128i m0r = _mm_setr_epi8(0, 3, 6, 9, 12, 15, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1r = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, 2, 5, 8, 11, 14,
                                    -1, -1, -1, -1, -1);
  const __m128i m2r = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, 1, 4, 7, 10, 13);
  const __m128i m0g = _mm_setr_epi8(1, 4, 7, 10, 13, -1, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1g = _mm_setr_epi8(-1, -1, -1, -1, -1, 0, 3, 6, 9, 12, 15,
                                    -1, -1, -1, -1, -1);
  const __m128i m2g = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, 2, 5, 8, 11, 14);
  const __m128i m0b = _mm_setr_epi8(2, 5, 8, 11, 14, -1, -1, -1, -1, -1, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m1b = _mm_setr_epi8(-1, -1, -1, -1, -1, 1, 4, 7, 10, 13, -1,
                                    -1, -1, -1, -1, -1);
  const __m128i m2b = _mm_setr_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    0, 3, 6, 9, 12, 15);
  auto block16 = [&](int i) {
    const uint8_t* p = s + static_cast<size_t>(3) * i;
    __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    __m128i vr = _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0r),
                                           _mm_shuffle_epi8(v1, m1r)),
                              _mm_shuffle_epi8(v2, m2r));
    __m128i vg = _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0g),
                                           _mm_shuffle_epi8(v1, m1g)),
                              _mm_shuffle_epi8(v2, m2g));
    __m128i vb = _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, m0b),
                                           _mm_shuffle_epi8(v1, m1b)),
                              _mm_shuffle_epi8(v2, m2b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(r + i), vr);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(g + i), vg);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), vb);
  };
  int i = 0;
  for (; i + 16 <= n; i += 16) block16(i);
  if (i < n) {
    if (n >= 16) {
      // Overlapped tail (see ReduceRowsOnceSse4): planar outputs never
      // alias the packed input, so redoing the last full block is exact.
      block16(n - 16);
    } else {
      DeinterleaveRgbScalar(src + i, n - i, r + i, g + i, b + i);
    }
  }
}

int MatchMaskTotalSse4(const uint8_t* ar, const uint8_t* ag,
                       const uint8_t* ab, const uint8_t* br,
                       const uint8_t* bg, const uint8_t* bb, int overlap,
                       uint8_t tol, uint8_t* m) {
  const __m128i tolv = _mm_set1_epi8(static_cast<char>(tol));
  const __m128i one = _mm_set1_epi8(1);
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  int i = 0;
  for (; i + 16 <= overlap; i += 16) {
    __m128i var = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ar + i));
    __m128i vbr = _mm_loadu_si128(reinterpret_cast<const __m128i*>(br + i));
    __m128i vag = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ag + i));
    __m128i vbg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bg + i));
    __m128i vab = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ab + i));
    __m128i vbb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bb + i));
    // |x - y| for unsigned bytes: saturating differences in both
    // directions, one of which is zero.
    __m128i dr = _mm_or_si128(_mm_subs_epu8(var, vbr),
                              _mm_subs_epu8(vbr, var));
    __m128i dg = _mm_or_si128(_mm_subs_epu8(vag, vbg),
                              _mm_subs_epu8(vbg, vag));
    __m128i db = _mm_or_si128(_mm_subs_epu8(vab, vbb),
                              _mm_subs_epu8(vbb, vab));
    __m128i dm = _mm_max_epu8(_mm_max_epu8(dr, dg), db);
    // dm <= tol  <=>  min(dm, tol) == dm (unsigned bytes).
    __m128i hit = _mm_cmpeq_epi8(_mm_min_epu8(dm, tolv), dm);
    __m128i ones = _mm_and_si128(hit, one);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(m + i), ones);
    // Byte-popcount without POPCNT (a separate CPUID bit from SSE4.1):
    // psadbw sums the 0/1 bytes into two u64 halves.
    acc = _mm_add_epi64(acc, _mm_sad_epu8(ones, zero));
  }
  int total = static_cast<int>(_mm_extract_epi64(acc, 0) +
                               _mm_extract_epi64(acc, 1));
  total += MatchMaskTotalScalar(ar + i, ag + i, ab + i, br + i, bg + i,
                                bb + i, overlap - i, tol, m + i);
  return total;
}

}  // namespace

const KernelOps kSse4Ops = {
    &ReduceRowsOnceSse4,
    &ReduceRowInPlaceSse4,
    &DeinterleaveRgbSse4,
    &MatchMaskTotalSse4,
};

}  // namespace kernels
}  // namespace vdb

#endif  // VDB_KERNELS_HAVE_SSE4
