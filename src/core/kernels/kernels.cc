#include "core/kernels.h"

#include <algorithm>
#include <cstring>

#include "core/kernels/kernel_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace vdb {
namespace {

bool SameGeometry(const AreaGeometry& a, const AreaGeometry& b) {
  return a.frame_width == b.frame_width && a.frame_height == b.frame_height &&
         a.w_estimate == b.w_estimate && a.b_estimate == b.b_estimate &&
         a.h_estimate == b.h_estimate && a.l_estimate == b.l_estimate &&
         a.w == b.w && a.b == b.b && a.h == b.h && a.l == b.l;
}

}  // namespace

void ReduceRowsOnce(const uint8_t* in, int width, int in_rows, uint8_t* out) {
  VDB_CHECK(in_rows >= 5 && IsSizeSetElement(in_rows))
      << "row count " << in_rows << " is not a reducible size-set element";
  kernels::ActiveOps().reduce_rows_once(in, width, in_rows, out);
}

void PyramidWorkspace::Prepare(const AreaGeometry& geom) {
  if (has_geom_ && SameGeometry(geom_, geom)) return;
  geom_ = geom;
  has_geom_ = true;
  ++prepare_count_;

  const int c = geom.frame_width;
  const int wp = geom.w_estimate;
  const int hp = geom.h_estimate;
  const int lp = geom.l_estimate;

  // TBA gather: dst (x, y) reads natural-strip pixel (nx, ny) with
  // nx = x*lp/l, ny = y*wp/w (ResizeNearest's floor mapping), and the
  // natural strip is [rotated left column | top bar | rotated right
  // column] (ExtractNaturalTba). All three segments collapse to
  // src_index = base[x] + stride[x] * ny.
  tba_base_.resize(static_cast<size_t>(geom.l));
  tba_stride_.resize(static_cast<size_t>(geom.l));
  for (int x = 0; x < geom.l; ++x) {
    int nx = static_cast<int>(static_cast<long>(x) * lp / geom.l);
    size_t sx = static_cast<size_t>(x);
    if (nx < hp) {
      // Left column, rotated outward: src = (ny, wp + hp - 1 - nx).
      tba_base_[sx] = (wp + hp - 1 - nx) * c;
      tba_stride_[sx] = 1;
    } else if (nx < hp + c) {
      // Top bar: src = (nx - hp, ny).
      tba_base_[sx] = nx - hp;
      tba_stride_[sx] = c;
    } else {
      // Right column, rotated outward: src = (c - wp + ny, wp + nx-hp-c).
      tba_base_[sx] = (wp + (nx - hp - c)) * c + (c - wp);
      tba_stride_[sx] = 1;
    }
  }
  tba_row_.resize(static_cast<size_t>(geom.w));
  for (int y = 0; y < geom.w; ++y) {
    tba_row_[static_cast<size_t>(y)] =
        static_cast<int>(static_cast<long>(y) * wp / geom.w);
  }

  // FOA gather: crop rect (wp, wp, b', h') then nearest resize to (b, h);
  // src_index = foa_row[y] + foa_base[x].
  foa_base_.resize(static_cast<size_t>(geom.b));
  for (int x = 0; x < geom.b; ++x) {
    foa_base_[static_cast<size_t>(x)] =
        wp + static_cast<int>(static_cast<long>(x) * geom.b_estimate / geom.b);
  }
  foa_row_.resize(static_cast<size_t>(geom.h));
  for (int y = 0; y < geom.h; ++y) {
    foa_row_[static_cast<size_t>(y)] =
        (wp + static_cast<int>(static_cast<long>(y) * geom.h_estimate /
                               geom.h)) *
        c;
  }

  size_t plane = std::max(static_cast<size_t>(geom.l) * geom.w,
                          static_cast<size_t>(geom.b) * geom.h);
  // Growth only: a workspace bouncing between two geometries keeps the
  // larger buffers and stays allocation-free for both.
  if (ping_r_.size() < plane) {
    ping_r_.resize(plane);
    ping_g_.resize(plane);
    ping_b_.resize(plane);
    pong_r_.resize(plane);
    pong_g_.resize(plane);
    pong_b_.resize(plane);
  }
  size_t line = static_cast<size_t>(std::max(geom.l, geom.b));
  if (sign_r_.size() < line) {
    sign_r_.resize(line);
    sign_g_.resize(line);
    sign_b_.resize(line);
  }
}

void PyramidWorkspace::GatherTba(const Frame& frame) {
  const PixelRGB* src = frame.data();
  const int l = geom_.l;
  const int* base = tba_base_.data();
  const int* stride = tba_stride_.data();
  for (int y = 0; y < geom_.w; ++y) {
    const int ny = tba_row_[static_cast<size_t>(y)];
    uint8_t* r = ping_r_.data() + static_cast<size_t>(y) * l;
    uint8_t* g = ping_g_.data() + static_cast<size_t>(y) * l;
    uint8_t* b = ping_b_.data() + static_cast<size_t>(y) * l;
    for (int x = 0; x < l; ++x) {
      const PixelRGB& p = src[base[x] + stride[x] * ny];
      r[x] = p.r;
      g[x] = p.g;
      b[x] = p.b;
    }
  }
}

void PyramidWorkspace::GatherFoa(const Frame& frame) {
  const PixelRGB* src = frame.data();
  const int w = geom_.b;
  const int* base = foa_base_.data();
  for (int y = 0; y < geom_.h; ++y) {
    const PixelRGB* row = src + foa_row_[static_cast<size_t>(y)];
    uint8_t* r = ping_r_.data() + static_cast<size_t>(y) * w;
    uint8_t* g = ping_g_.data() + static_cast<size_t>(y) * w;
    uint8_t* b = ping_b_.data() + static_cast<size_t>(y) * w;
    for (int x = 0; x < w; ++x) {
      const PixelRGB& p = row[base[x]];
      r[x] = p.r;
      g[x] = p.g;
      b[x] = p.b;
    }
  }
}

void PyramidWorkspace::ReducePlanesToLine(int width, int rows) {
  uint8_t* cur[3] = {ping_r_.data(), ping_g_.data(), ping_b_.data()};
  uint8_t* nxt[3] = {pong_r_.data(), pong_g_.data(), pong_b_.data()};
  while (rows > 1) {
    for (int ch = 0; ch < 3; ++ch) {
      ReduceRowsOnce(cur[ch], width, rows, nxt[ch]);
      std::swap(cur[ch], nxt[ch]);
    }
    rows = (rows - 3) / 2;
  }
  line_r_ = cur[0];
  line_g_ = cur[1];
  line_b_ = cur[2];
}

PixelRGB PyramidWorkspace::ReduceLineRowToPixel(int width) {
  const kernels::KernelOps& ops = kernels::ActiveOps();
  std::memcpy(sign_r_.data(), line_r_, static_cast<size_t>(width));
  std::memcpy(sign_g_.data(), line_g_, static_cast<size_t>(width));
  std::memcpy(sign_b_.data(), line_b_, static_cast<size_t>(width));
  int n = width;
  while (n > 1) {
    ops.reduce_row_inplace(sign_r_.data(), n);
    ops.reduce_row_inplace(sign_g_.data(), n);
    ops.reduce_row_inplace(sign_b_.data(), n);
    n = (n - 3) / 2;
  }
  return PixelRGB(sign_r_[0], sign_g_[0], sign_b_[0]);
}

Status PyramidWorkspace::ComputeInto(const Frame& frame,
                                     const AreaGeometry& geom,
                                     FrameSignature* out) {
  if (frame.width() != geom.frame_width ||
      frame.height() != geom.frame_height) {
    return Status::InvalidArgument(StrFormat(
        "frame %dx%d does not match geometry %dx%d", frame.width(),
        frame.height(), geom.frame_width, geom.frame_height));
  }
  // ComputeAreaGeometry only emits size-set dimensions; a hand-built
  // geometry that skipped snapping would silently break the pyramid's
  // 5-to-1 window structure, so reject it like the reference path does.
  if (!IsSizeSetElement(geom.w) || !IsSizeSetElement(geom.l) ||
      !IsSizeSetElement(geom.b) || !IsSizeSetElement(geom.h) ||
      geom.w_estimate <= 0 || geom.h_estimate <= 0 ||
      geom.b_estimate <= 0 || geom.l_estimate <= 0) {
    return Status::InvalidArgument(
        StrFormat("geometry (w=%d b=%d h=%d l=%d) is not size-set snapped",
                  geom.w, geom.b, geom.h, geom.l));
  }
  Prepare(geom);

  GatherTba(frame);
  ReducePlanesToLine(geom.l, geom.w);
  out->signature_ba.resize(static_cast<size_t>(geom.l));
  PixelRGB* sig = out->signature_ba.data();
  for (int x = 0; x < geom.l; ++x) {
    sig[x] = PixelRGB(line_r_[x], line_g_[x], line_b_[x]);
  }
  out->sign_ba = ReduceLineRowToPixel(geom.l);

  GatherFoa(frame);
  ReducePlanesToLine(geom.b, geom.h);
  out->sign_oa = ReduceLineRowToPixel(geom.b);
  return Status::Ok();
}

Result<FrameSignature> PyramidWorkspace::Compute(const Frame& frame,
                                                 const AreaGeometry& geom) {
  FrameSignature out;
  VDB_RETURN_IF_ERROR(ComputeInto(frame, geom, &out));
  return out;
}

size_t PyramidWorkspace::scratch_bytes() const {
  return tba_base_.capacity() * sizeof(int) +
         tba_stride_.capacity() * sizeof(int) +
         tba_row_.capacity() * sizeof(int) +
         foa_base_.capacity() * sizeof(int) +
         foa_row_.capacity() * sizeof(int) + ping_r_.capacity() +
         ping_g_.capacity() + ping_b_.capacity() + pong_r_.capacity() +
         pong_g_.capacity() + pong_b_.capacity() + sign_r_.capacity() +
         sign_g_.capacity() + sign_b_.capacity();
}

Result<FrameSignature> ComputeFrameSignatureReference(
    const Frame& frame, const AreaGeometry& geom) {
  FrameSignature out;
  VDB_ASSIGN_OR_RETURN(Frame tba, ExtractTba(frame, geom));
  VDB_ASSIGN_OR_RETURN(AreaReduction ba, ReduceArea(tba));
  out.signature_ba = std::move(ba.signature);
  out.sign_ba = ba.sign;

  VDB_ASSIGN_OR_RETURN(Frame foa, ExtractFoa(frame, geom));
  VDB_ASSIGN_OR_RETURN(AreaReduction oa, ReduceArea(foa));
  out.sign_oa = oa.sign;
  return out;
}

namespace {

inline bool PixelsMatch(const PixelRGB& a, const PixelRGB& b, int tolerance) {
  return MaxChannelDifference(a, b) <= tolerance;
}

}  // namespace

double BestShiftMatchScoreKernel(const Signature& a, const Signature& b,
                                 int tolerance) {
  VDB_CHECK(a.size() == b.size()) << "signature lengths differ";
  const int n = static_cast<int>(a.size());
  if (n == 0) return 0.0;
  // A negative tolerance matches nothing (mirrors the reference loop).
  if (tolerance < 0) return 0.0;

  // Per-shift match mask plus both signatures deinterleaved into planar
  // channel arrays; per-thread so steady state allocates nothing. The
  // deinterleave is O(n) amortised over O(n) shifts, and it turns the
  // per-shift mask computation into contiguous byte arithmetic the vector
  // kernels chew through (the 3-byte PixelRGB stride defeats SIMD).
  const kernels::KernelOps& ops = kernels::ActiveOps();
  thread_local std::vector<uint8_t> scratch;
  if (static_cast<int>(scratch.size()) < 7 * n) {
    scratch.resize(static_cast<size_t>(7) * n);
  }
  uint8_t* m = scratch.data();
  uint8_t* ar = m + n;
  uint8_t* ag = ar + n;
  uint8_t* ab = ag + n;
  uint8_t* br = ab + n;
  uint8_t* bg = br + n;
  uint8_t* bb = bg + n;
  ops.deinterleave_rgb(a.data(), n, ar, ag, ab);
  ops.deinterleave_rgb(b.data(), n, br, bg, bb);
  const uint8_t tol = static_cast<uint8_t>(tolerance >= 255 ? 255 : tolerance);

  int best = 0;
  // Shifts by decreasing overlap (0, +1, -1, +2, -2, ...): a shift of
  // magnitude d overlaps n - d pixels, so once best >= n - d no remaining
  // shift can improve the score and the search stops. The score is the
  // maximum run over all shifts — order-independent, so this visits a
  // subset of the reference loop's shifts and returns the same value.
  for (int d = 0; d < n; ++d) {
    const int overlap = n - d;
    if (overlap <= best) break;
    for (int dir = 0; dir < (d == 0 ? 1 : 2); ++dir) {
      const int s = dir == 0 ? d : -d;
      const int lo = std::max(0, s);
      const int ao = lo;
      const int bo = lo - s;
      // Branchless mask + match count in one sweep over the planar
      // channels (contiguous byte loads, max/min absolute difference,
      // psadbw popcount in the vector levels).
      int total = ops.match_mask_total(ar + ao, ag + ao, ab + ao, br + bo,
                                       bg + bo, bb + bo, overlap, tol, m);
      // The longest run cannot exceed the number of matches; for dissimilar
      // frames (the stage-3 common case: stages 1-2 already settled the
      // easy pairs) this skips the serial run scan almost every shift.
      if (total <= best) continue;
      int run = 0;
      for (int i = 0; i < overlap; ++i) {
        if (m[i]) {
          if (++run > best) best = run;
        } else {
          run = 0;
          // The unseen suffix is too short to beat the best run.
          if (overlap - i - 1 <= best) break;
        }
      }
      if (best == n) return 1.0;
    }
  }
  return static_cast<double>(best) / static_cast<double>(n);
}

double BestShiftMatchScoreReference(const Signature& a, const Signature& b,
                                    int tolerance) {
  VDB_CHECK(a.size() == b.size()) << "signature lengths differ";
  int n = static_cast<int>(a.size());
  if (n == 0) return 0.0;

  int best_run = 0;
  // Shift s in (-n, n): b is displaced by s relative to a; the overlap is
  // a[max(0,s) .. n-1+min(0,s)] against b[i - s].
  for (int s = -(n - 1); s <= n - 1; ++s) {
    int lo = std::max(0, s);
    int hi = std::min(n, n + s);
    int run = 0;
    for (int i = lo; i < hi; ++i) {
      if (PixelsMatch(a[static_cast<size_t>(i)], b[static_cast<size_t>(i - s)],
                      tolerance)) {
        ++run;
        best_run = std::max(best_run, run);
      } else {
        run = 0;
      }
    }
    if (best_run == n) break;  // cannot improve
  }
  return static_cast<double>(best_run) / static_cast<double>(n);
}

}  // namespace vdb
