#ifndef VDB_CORE_SHOT_DETECTOR_H_
#define VDB_CORE_SHOT_DETECTOR_H_

#include <deque>
#include <vector>

#include "core/extractor.h"
#include "core/shot.h"
#include "util/result.h"
#include "video/video.h"

namespace vdb {

// Options of the three-stage camera-tracking SBD procedure (Figure 4).
// Stage 1 and Stage 2 are quick-and-dirty tests that settle the easy
// "clearly the same shot" cases; only when both fail does Stage 3 track the
// background by shifting the two signatures against each other.
struct CameraTrackingOptions {
  // Stage 1: frames whose background signs differ by at most this
  // percentage of the colour range (max channel diff / 256 * 100) are
  // declared same-shot immediately.
  double stage1_sign_diff_pct = 1.2;

  // Stage 2: aligned signature comparison. Two signature pixels "match"
  // when their max channel difference is at most match_tolerance_pct of
  // 256. If at least stage2_match_fraction of positions match, the frames
  // are declared same-shot.
  double match_tolerance_pct = 5.0;
  double stage2_match_fraction = 0.85;

  // Stage 3: signatures are shifted toward each other one pixel at a time;
  // for each shift the longest run of matching overlapping pixels is
  // recorded. If the running maximum, normalised by the signature length,
  // reaches stage3_run_fraction, the frames share enough background to be
  // the same shot; otherwise a shot boundary is declared.
  double stage3_run_fraction = 0.45;

  // Shots shorter than this many frames are merged into their successor
  // (guards against one-frame flash shots).
  int min_shot_frames = 2;

  // Optional extension (off by default, ablated in
  // bench_ablation_gradual): dissolves defeat the pairwise cascade because
  // every consecutive pair looks same-shot while the background slides from
  // one scene's sign to another's. When enabled, a second pass compares
  // signs `gradual_window` frames apart; a drift of at least
  // gradual_total_pct of the colour range — with no hard cut already found
  // nearby — is reported as a boundary at the window's midpoint.
  bool detect_gradual = false;
  int gradual_window = 8;
  double gradual_total_pct = 8.0;
};

// Which stage settled a frame-pair decision, for the Figure-4 statistics.
enum class SbdStage {
  kStage1SameShot = 0,
  kStage2SameShot = 1,
  kStage3SameShot = 2,
  kStage3Boundary = 3,
};

struct SbdStageStats {
  long stage1_same = 0;
  long stage2_same = 0;
  long stage3_same = 0;
  long stage3_boundary = 0;

  long total() const {
    return stage1_same + stage2_same + stage3_same + stage3_boundary;
  }
};

// Result of detection over one video.
struct ShotDetectionResult {
  std::vector<Shot> shots;
  std::vector<int> boundaries;  // first frame of each shot except the first
  SbdStageStats stage_stats;
};

// Decision for a single pair of consecutive frames; exposed for tests and
// the stage-statistics bench.
struct PairDecision {
  bool same_shot = false;
  SbdStage stage = SbdStage::kStage3Boundary;
  // Stage-3 best normalised run length (0 when stages 1-2 decided).
  double stage3_score = 0.0;
};

// The camera-tracking shot boundary detector (Section 2).
class CameraTrackingDetector {
 public:
  explicit CameraTrackingDetector(
      CameraTrackingOptions options = CameraTrackingOptions());

  const CameraTrackingOptions& options() const { return options_; }

  // Decides whether two frames (given their signatures) belong to the same
  // shot.
  PairDecision ComparePair(const FrameSignature& a,
                           const FrameSignature& b) const;

  // Runs detection over precomputed signatures.
  Result<ShotDetectionResult> DetectFromSignatures(
      const VideoSignatures& signatures) const;

  // Convenience: computes signatures and runs detection.
  Result<ShotDetectionResult> Detect(const Video& video) const;

 private:
  CameraTrackingOptions options_;
};

// Incremental (frame-at-a-time) form of the camera-tracking detector, the
// heart of the streaming ingest pipeline (stream/). Frames are fed one
// FrameSignature at a time; shots are reported as soon as they are final.
// The state carried between frames is the previous frame's signature, the
// cumulative stage statistics, and — only when detect_gradual is on — a
// ring of the last gradual_window+1 signatures plus the not-yet-settled
// dissolve candidates. Memory is O(gradual_window), never O(frames).
//
// CameraTrackingDetector::DetectFromSignatures is a thin wrapper over this
// class, so streaming and batch detection are boundary-for-boundary and
// stat-for-stat identical by construction (the golden equivalence test in
// tests/stream pins this across all Table-5 presets).
//
// Latency: with detect_gradual off, a shot closes on the very pair that
// discovered its end boundary. With it on, closure lags gradual_window
// frames — a dissolve candidate at frame t is only accepted or rejected
// once the pairwise decisions through t+⌈k/2⌉ exist (a nearby hard cut
// suppresses it), so boundaries are released once the stream is k frames
// past them.
class StreamingShotDetector {
 public:
  struct ClosedShot {
    Shot shot;
    // Cumulative pair statistics at the instant the shot closed. With
    // detect_gradual off this covers exactly the pairs (0,1)..(b-1,b)
    // where b is the shot-ending boundary — the seed ResumeAt needs.
    SbdStageStats stats_at_close;
  };

  explicit StreamingShotDetector(
      CameraTrackingOptions options = CameraTrackingOptions());

  const CameraTrackingOptions& options() const { return pair_.options(); }

  // Feeds the next frame's signature. Any shots that became final are
  // appended to *closed (zero or more per call).
  void PushFrame(const FrameSignature& frame, std::vector<ClosedShot>* closed);

  // Ends the stream: settles pending dissolve candidates, flushes held
  // boundaries, and closes the final open shot. No frames pushed → no
  // shots appended. The detector is spent afterwards.
  void Finish(std::vector<ClosedShot>* closed);

  // Restarts detection mid-clip after a checkpoint: frames [0, next_frame)
  // were already analysed with the last shot closed at boundary
  // `next_frame`, and `stats` is the cumulative pair statistics through
  // pair (next_frame-1, next_frame) — i.e. the final ClosedShot's
  // stats_at_close. The next PushFrame must be frame `next_frame` of the
  // clip. Must be called before any PushFrame. Rejected when
  // detect_gradual is on: replaying a dissolve window would need signature
  // history that checkpoints do not persist.
  Status ResumeAt(int next_frame, const SbdStageStats& stats);

  // Index the next PushFrame will be treated as (equals frames pushed,
  // plus the resume offset).
  int next_frame() const { return next_frame_; }

  // Cumulative statistics over every pair decided so far.
  const SbdStageStats& stage_stats() const { return stats_; }

 private:
  // A dissolve candidate, created when the sign drifted over the window
  // ending at frame t; settled (accepted into gr_pending_ or dropped) once
  // the pairwise decisions it can collide with exist.
  struct GradualCandidate {
    int t = 0;         // window end frame
    int boundary = 0;  // t - k/2, the would-be boundary
    bool pans = false;  // shift-matching explained the drift (camera pan)
  };

  void SettleCandidate(const GradualCandidate& c);
  void ReleaseThrough(int watermark, std::vector<ClosedShot>* closed);
  void KeepOrMergeBoundary(int b, std::vector<ClosedShot>* closed);

  CameraTrackingDetector pair_;  // reused for its ComparePair cascade
  int k_ = 0;                    // effective gradual window
  int release_lag_ = 0;          // k_ when detect_gradual, else 0

  int next_frame_ = 0;
  bool finished_ = false;
  FrameSignature prev_;
  bool have_prev_ = false;
  SbdStageStats stats_;

  // Gradual machinery (unused when detect_gradual is off).
  std::vector<FrameSignature> ring_;  // last k_+1 frames, indexed mod k_+1
  std::deque<GradualCandidate> candidates_;
  std::vector<int> pw_all_;  // every pairwise boundary, for suppression
  int gr_last_ = 0;          // last accepted gradual boundary
  bool have_gr_last_ = false;

  // Boundaries awaiting release to the min-shot merge, each ascending.
  std::deque<int> pw_pending_;
  std::deque<int> gr_pending_;

  // Min-shot merge state: the open shot and the last kept boundary.
  int shot_start_ = 0;
  int last_kept_ = 0;
  bool have_last_kept_ = false;
};

// Longest run of matching pixels over all relative shifts of two equal-
// length signatures, normalised by their length. Exposed for tests.
// Runs the optimized kernel (core/kernels.h); the original scalar loop is
// kept there as BestShiftMatchScoreReference and tested equivalent.
double BestShiftMatchScore(const Signature& a, const Signature& b,
                           int tolerance);

}  // namespace vdb

#endif  // VDB_CORE_SHOT_DETECTOR_H_
