#ifndef VDB_CORE_SHOT_DETECTOR_H_
#define VDB_CORE_SHOT_DETECTOR_H_

#include <vector>

#include "core/extractor.h"
#include "core/shot.h"
#include "util/result.h"
#include "video/video.h"

namespace vdb {

// Options of the three-stage camera-tracking SBD procedure (Figure 4).
// Stage 1 and Stage 2 are quick-and-dirty tests that settle the easy
// "clearly the same shot" cases; only when both fail does Stage 3 track the
// background by shifting the two signatures against each other.
struct CameraTrackingOptions {
  // Stage 1: frames whose background signs differ by at most this
  // percentage of the colour range (max channel diff / 256 * 100) are
  // declared same-shot immediately.
  double stage1_sign_diff_pct = 1.2;

  // Stage 2: aligned signature comparison. Two signature pixels "match"
  // when their max channel difference is at most match_tolerance_pct of
  // 256. If at least stage2_match_fraction of positions match, the frames
  // are declared same-shot.
  double match_tolerance_pct = 5.0;
  double stage2_match_fraction = 0.85;

  // Stage 3: signatures are shifted toward each other one pixel at a time;
  // for each shift the longest run of matching overlapping pixels is
  // recorded. If the running maximum, normalised by the signature length,
  // reaches stage3_run_fraction, the frames share enough background to be
  // the same shot; otherwise a shot boundary is declared.
  double stage3_run_fraction = 0.45;

  // Shots shorter than this many frames are merged into their successor
  // (guards against one-frame flash shots).
  int min_shot_frames = 2;

  // Optional extension (off by default, ablated in
  // bench_ablation_gradual): dissolves defeat the pairwise cascade because
  // every consecutive pair looks same-shot while the background slides from
  // one scene's sign to another's. When enabled, a second pass compares
  // signs `gradual_window` frames apart; a drift of at least
  // gradual_total_pct of the colour range — with no hard cut already found
  // nearby — is reported as a boundary at the window's midpoint.
  bool detect_gradual = false;
  int gradual_window = 8;
  double gradual_total_pct = 8.0;
};

// Which stage settled a frame-pair decision, for the Figure-4 statistics.
enum class SbdStage {
  kStage1SameShot = 0,
  kStage2SameShot = 1,
  kStage3SameShot = 2,
  kStage3Boundary = 3,
};

struct SbdStageStats {
  long stage1_same = 0;
  long stage2_same = 0;
  long stage3_same = 0;
  long stage3_boundary = 0;

  long total() const {
    return stage1_same + stage2_same + stage3_same + stage3_boundary;
  }
};

// Result of detection over one video.
struct ShotDetectionResult {
  std::vector<Shot> shots;
  std::vector<int> boundaries;  // first frame of each shot except the first
  SbdStageStats stage_stats;
};

// Decision for a single pair of consecutive frames; exposed for tests and
// the stage-statistics bench.
struct PairDecision {
  bool same_shot = false;
  SbdStage stage = SbdStage::kStage3Boundary;
  // Stage-3 best normalised run length (0 when stages 1-2 decided).
  double stage3_score = 0.0;
};

// The camera-tracking shot boundary detector (Section 2).
class CameraTrackingDetector {
 public:
  explicit CameraTrackingDetector(
      CameraTrackingOptions options = CameraTrackingOptions());

  const CameraTrackingOptions& options() const { return options_; }

  // Decides whether two frames (given their signatures) belong to the same
  // shot.
  PairDecision ComparePair(const FrameSignature& a,
                           const FrameSignature& b) const;

  // Runs detection over precomputed signatures.
  Result<ShotDetectionResult> DetectFromSignatures(
      const VideoSignatures& signatures) const;

  // Convenience: computes signatures and runs detection.
  Result<ShotDetectionResult> Detect(const Video& video) const;

 private:
  CameraTrackingOptions options_;
};

// Longest run of matching pixels over all relative shifts of two equal-
// length signatures, normalised by their length. Exposed for tests.
double BestShiftMatchScore(const Signature& a, const Signature& b,
                           int tolerance);

}  // namespace vdb

#endif  // VDB_CORE_SHOT_DETECTOR_H_
