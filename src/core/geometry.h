#ifndef VDB_CORE_GEOMETRY_H_
#define VDB_CORE_GEOMETRY_H_

#include <vector>

#include "util/result.h"
#include "video/frame.h"
#include "video/frame_ops.h"

namespace vdb {

// Geometry of the paper's frame areas (Section 2, Figure 1).
//
// A frame of width c and height r is split into
//  * the fixed background area (FBA): a Π-shaped region made of a top bar
//    (c wide, w tall) and two side columns (w wide, r - w tall), and
//  * the fixed object area (FOA): the bottom-centre rectangle
//    (b = c - 2w wide, h = r - w tall) where primary objects appear.
//
// The two side columns are rotated outward to turn the Π into a single
// horizontal strip, the transformed background area (TBA), of length
// L = c + 2h and height w (Figure 2).
//
// The Gaussian Pyramid reduces 5 pixels to 1, so every reducible dimension
// must come from the size set {1, 5, 13, 29, 61, 125, ...} where
// s_j = 1 + sum_{i=2..j} 2^i  =  2^(j+1) - 3  (Equation 1). Estimates
// (w', b', h', L') are derived from the frame size and snapped to the set
// using j = 2 + floor(log2((x + 3) / 6)) (Table 1).
struct AreaGeometry {
  int frame_width = 0;   // c
  int frame_height = 0;  // r

  // Raw estimates (primed values in the paper).
  int w_estimate = 0;  // w' = floor(c / 10)
  int b_estimate = 0;  // b' = c - 2w'
  int h_estimate = 0;  // h' = r - w'
  int l_estimate = 0;  // L' = c + 2h'

  // Size-set values used by the pyramid.
  int w = 0;  // TBA height / FBA bar thickness
  int b = 0;  // FOA width
  int h = 0;  // FOA height
  int l = 0;  // TBA length
};

// j-th element of the size set (j >= 1): 1, 5, 13, 29, 61, 125, ...
int SizeSetElement(int j);

// True if `value` is an element of the size set.
bool IsSizeSetElement(int value);

// Snaps a positive estimate to the size set per Table 1.
int SnapToSizeSet(int estimate);

// Computes the full geometry for a frame of `width` x `height`. Fails for
// frames too small to carry a Π-shaped background (roughly < 10x10: the
// paper's w' = floor(c/10) becomes 0).
Result<AreaGeometry> ComputeAreaGeometry(int width, int height);

// Extracts the TBA strip of `frame` at its natural (un-snapped) size:
// an (L' x w') image laid out [rotated left column | top bar | rotated
// right column]. Rotation keeps pixels adjacent to the top bar adjacent to
// the bar in the strip.
Result<Frame> ExtractNaturalTba(const Frame& frame, const AreaGeometry& geom);

// Extracts the TBA and resamples it to the size-set dimensions (l x w),
// ready for pyramid reduction.
Result<Frame> ExtractTba(const Frame& frame, const AreaGeometry& geom);

// Extracts the FOA and resamples it to the size-set dimensions (b x h).
Result<Frame> ExtractFoa(const Frame& frame, const AreaGeometry& geom);

// The FOA rectangle in frame coordinates (before resampling).
Rect FoaRect(const AreaGeometry& geom);

}  // namespace vdb

#endif  // VDB_CORE_GEOMETRY_H_
