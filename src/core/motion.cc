#include "core/motion.h"

#include <cmath>

#include "util/string_util.h"

namespace vdb {

std::string_view CameraMotionLabelName(CameraMotionLabel label) {
  switch (label) {
    case CameraMotionLabel::kStatic:
      return "static";
    case CameraMotionLabel::kPanLeft:
      return "pan-left";
    case CameraMotionLabel::kPanRight:
      return "pan-right";
    case CameraMotionLabel::kTiltUp:
      return "tilt-up";
    case CameraMotionLabel::kTiltDown:
      return "tilt-down";
    case CameraMotionLabel::kZoomIn:
      return "zoom-in";
    case CameraMotionLabel::kZoomOut:
      return "zoom-out";
    case CameraMotionLabel::kComplex:
      return "complex";
  }
  return "unknown";
}

CameraMotionGroup MotionGroup(CameraMotionLabel label) {
  switch (label) {
    case CameraMotionLabel::kStatic:
      return CameraMotionGroup::kStatic;
    case CameraMotionLabel::kPanLeft:
    case CameraMotionLabel::kPanRight:
      return CameraMotionGroup::kPan;
    case CameraMotionLabel::kTiltUp:
    case CameraMotionLabel::kTiltDown:
      return CameraMotionGroup::kTilt;
    case CameraMotionLabel::kZoomIn:
    case CameraMotionLabel::kZoomOut:
      return CameraMotionGroup::kZoom;
    case CameraMotionLabel::kComplex:
      return CameraMotionGroup::kComplex;
  }
  return CameraMotionGroup::kComplex;
}

std::string_view CameraMotionGroupName(CameraMotionGroup group) {
  switch (group) {
    case CameraMotionGroup::kStatic:
      return "static";
    case CameraMotionGroup::kPan:
      return "pan";
    case CameraMotionGroup::kTilt:
      return "tilt";
    case CameraMotionGroup::kZoom:
      return "zoom";
    case CameraMotionGroup::kComplex:
      return "complex";
  }
  return "unknown";
}

Result<ProbeShift> EstimateProbeShift(const Signature& a, const Signature& b,
                                      int center, int half_window,
                                      int max_shift) {
  int n = static_cast<int>(a.size());
  if (b.size() != a.size()) {
    return Status::InvalidArgument("signature lengths differ");
  }
  if (center - half_window < 0 || center + half_window >= n) {
    return Status::OutOfRange(
        StrFormat("probe window [%d +- %d] outside signature of %d",
                  center, half_window, n));
  }

  ProbeShift best;
  for (int s = -max_shift; s <= max_shift; ++s) {
    if (center + s - half_window < 0 || center + s + half_window >= n) {
      continue;
    }
    double acc = 0.0;
    int count = 0;
    for (int i = -half_window; i <= half_window; ++i) {
      acc += MaxChannelDifference(a[static_cast<size_t>(center + i)],
                                  b[static_cast<size_t>(center + s + i)]);
      ++count;
    }
    double residual = acc / count;
    // Prefer the smallest |shift| on residual ties so a static scene does
    // not wander.
    if (residual < best.residual - 1e-9 ||
        (residual < best.residual + 1e-9 &&
         std::abs(s) < std::abs(best.shift))) {
      best.residual = residual;
      best.shift = s;
    }
  }
  return best;
}

namespace {

// Aggregated displacement of one probe location over a shot.
struct ProbeTrack {
  double shift_sum = 0.0;     // per-frame normalised
  double shift_sq_sum = 0.0;  // for the consistency check
  int trusted = 0;
  int total = 0;

  double MeanShift() const { return trusted > 0 ? shift_sum / trusted : 0.0; }
  double Trust() const {
    return total > 0 ? static_cast<double>(trusted) / total : 0.0;
  }
  // Standard deviation of the per-pair shifts: genuine camera motion is
  // steady; spurious matches on decorrelated content scatter widely.
  double ShiftStdDev() const {
    if (trusted < 2) return 0.0;
    double mean = MeanShift();
    double var = shift_sq_sum / trusted - mean * mean;
    return var > 0 ? std::sqrt(var) : 0.0;
  }
};

// The displacement field is sampled at several positions across the
// top-bar section plus one probe per rotated side column.
constexpr int kMidProbes = 7;

struct ProbeSet {
  ProbeTrack left;   // centre of the rotated left column section
  ProbeTrack right;  // centre of the rotated right column section
  ProbeTrack mid[kMidProbes];
  double mid_pos[kMidProbes] = {};  // strip offset from the frame centre
};

struct ProbeCenters {
  int left;
  int right;
  int mid[kMidProbes];
  double mid_center;
};

ProbeCenters ComputeCenters(const AreaGeometry& geom) {
  double scale =
      static_cast<double>(geom.l) / static_cast<double>(geom.l_estimate);
  double left_end = geom.h_estimate * scale;
  double mid_end = (geom.h_estimate + geom.frame_width) * scale;
  ProbeCenters centers;
  centers.left = static_cast<int>(left_end / 2.0);
  centers.right = static_cast<int>((mid_end + geom.l) / 2.0);
  centers.mid_center = (left_end + mid_end) / 2.0;
  for (int k = 0; k < kMidProbes; ++k) {
    double t = (k + 1.0) / (kMidProbes + 1.0);
    centers.mid[k] = static_cast<int>(left_end + (mid_end - left_end) * t);
  }
  return centers;
}

// Runs the four probes over every (i, i+stride) pair of the shot.
Result<ProbeSet> TrackProbes(const VideoSignatures& signatures,
                             const Shot& shot, const MotionOptions& options,
                             int stride, int max_shift) {
  ProbeCenters centers = ComputeCenters(signatures.geometry);
  ProbeSet set;
  auto probe = [&](ProbeTrack* track, int center, const Signature& a,
                   const Signature& b) -> Status {
    VDB_ASSIGN_OR_RETURN(
        ProbeShift shift,
        EstimateProbeShift(a, b, center, options.half_window, max_shift));
    ++track->total;
    if (shift.residual <= options.good_residual &&
        std::abs(shift.shift) < max_shift) {
      ++track->trusted;
      double normalised = static_cast<double>(shift.shift) / stride;
      track->shift_sum += normalised;
      track->shift_sq_sum += normalised * normalised;
    }
    return Status::Ok();
  };

  for (int k = 0; k < kMidProbes; ++k) {
    set.mid_pos[k] = centers.mid[k] - centers.mid_center;
  }
  for (int f = shot.start_frame; f + stride <= shot.end_frame; f += stride) {
    const Signature& a =
        signatures.frames[static_cast<size_t>(f)].signature_ba;
    const Signature& b =
        signatures.frames[static_cast<size_t>(f + stride)].signature_ba;
    VDB_RETURN_IF_ERROR(probe(&set.left, centers.left, a, b));
    VDB_RETURN_IF_ERROR(probe(&set.right, centers.right, a, b));
    for (int k = 0; k < kMidProbes; ++k) {
      VDB_RETURN_IF_ERROR(probe(&set.mid[k], centers.mid[k], a, b));
    }
  }
  return set;
}

// Decides a label from the aggregated probe displacements; kComplex when
// nothing fits. The top-bar displacements are fitted with a straight line
// d(x) = a + b*(x - centre): a pure pan is a constant field (b ~ 0), a
// zoom is a linear field through the frame centre (b = -(ratio - 1)), and
// a static camera leaves both near zero.
MotionEstimate Decide(const ProbeSet& set, const MotionOptions& options) {
  MotionEstimate estimate;
  double l = set.left.MeanShift();
  double r = set.right.MeanShift();
  bool sides_ok = set.left.Trust() >= 0.5 && set.right.Trust() >= 0.5;
  double st = options.static_threshold;

  // Weighted least squares over the trusted mid probes.
  double sw = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;
  double used_trust = 0;
  int mid_used = 0;
  for (int k = 0; k < kMidProbes; ++k) {
    double w = set.mid[k].Trust();
    if (w < 0.5) continue;
    ++mid_used;
    used_trust += w;
    double x = set.mid_pos[k];
    double y = set.mid[k].MeanShift();
    sw += w;
    sx += w * x;
    sy += w * y;
    sxx += w * x * x;
    sxy += w * x * y;
  }
  double mid_trust = mid_used > 0 ? used_trust / mid_used : 0.0;
  bool mids_ok = mid_used >= 3;
  double pan_a = 0.0;
  double zoom_b = 0.0;
  double fit_rms = 0.0;
  if (mids_ok) {
    double det = sw * sxx - sx * sx;
    if (std::fabs(det) > 1e-9) {
      zoom_b = (sw * sxy - sx * sy) / det;
      pan_a = (sxx * sy - sx * sxy) / det;
    } else {
      pan_a = sy / sw;
    }
    // Residual of the linear fit: steady camera motion follows the line;
    // spurious matches on decorrelated content scatter around it.
    double acc = 0.0;
    int n = 0;
    for (int k = 0; k < kMidProbes; ++k) {
      if (set.mid[k].Trust() < 0.5) continue;
      double d = set.mid[k].MeanShift() -
                 (pan_a + zoom_b * set.mid_pos[k]);
      acc += d * d;
      ++n;
    }
    fit_rms = n > 0 ? std::sqrt(acc / n) : 0.0;
  }

  // Tilt first when the mirrored side columns carry stronger, opposite
  // displacement than the top bar: vertical motion leaves only weak,
  // ambiguous drift in the bar, which must not be mistaken for a pan.
  bool sides_steady =
      set.left.ShiftStdDev() <= 1.0 && set.right.ShiftStdDev() <= 1.0;
  if (sides_ok && sides_steady && l * r < 0 && std::fabs(l) >= st &&
      std::fabs(r) >= st &&
      (std::fabs(l) + std::fabs(r)) / 2.0 > std::fabs(pan_a)) {
    estimate.label = l > 0 ? CameraMotionLabel::kTiltDown
                           : CameraMotionLabel::kTiltUp;
    estimate.mean_shift = (std::fabs(l) + std::fabs(r)) / 2.0;
    estimate.confidence = (set.left.Trust() + set.right.Trust()) / 2.0;
    return estimate;
  }

  if (mids_ok) {
    // Zoom: linear displacement field through the frame centre. A slope of
    // 0.008 per pixel per frame corresponds to a 0.8%/frame zoom.
    constexpr double kZoomSlope = 0.006;
    if (std::fabs(zoom_b) >= kZoomSlope && fit_rms <= 0.5 &&
        std::fabs(pan_a) < std::fabs(zoom_b) * 40.0) {
      estimate.label = zoom_b > 0 ? CameraMotionLabel::kZoomIn
                                  : CameraMotionLabel::kZoomOut;
      estimate.mean_shift = zoom_b;
      estimate.confidence = mid_trust;
      return estimate;
    }
    // Pan: constant displacement. Content moving toward higher strip
    // indices (positive) means the camera moved left.
    if (std::fabs(pan_a) >= st &&
        fit_rms <= std::max(1.0, 0.5 * std::fabs(pan_a))) {
      estimate.label = pan_a > 0 ? CameraMotionLabel::kPanLeft
                                 : CameraMotionLabel::kPanRight;
      estimate.mean_shift = pan_a;
      estimate.confidence = mid_trust;
      return estimate;
    }
    if (!sides_ok || (std::fabs(l) < st && std::fabs(r) < st)) {
      estimate.label = CameraMotionLabel::kStatic;
      estimate.mean_shift = pan_a;
      estimate.confidence = mid_trust;
      return estimate;
    }
  }
  estimate.label = CameraMotionLabel::kComplex;
  estimate.confidence = 0.0;
  return estimate;
}

}  // namespace

Result<MotionEstimate> ClassifyShotMotion(const VideoSignatures& signatures,
                                          const Shot& shot,
                                          const MotionOptions& options) {
  if (shot.start_frame < 0 || shot.end_frame >= signatures.frame_count() ||
      shot.start_frame > shot.end_frame) {
    return Status::OutOfRange(
        StrFormat("shot [%d,%d] outside video of %d frames",
                  shot.start_frame, shot.end_frame,
                  signatures.frame_count()));
  }
  if (shot.frame_count() < 2) {
    MotionEstimate single;
    single.label = CameraMotionLabel::kStatic;
    single.confidence = 0.0;
    return single;
  }

  // Pass 1: stride 4 (sensitive to slow drifts). Zoom displaces the
  // quarter probes by well under a pixel per frame, so an apparent static
  // verdict gets a long-stride second look; fast motion that defeats the
  // probes entirely gets an adjacent-frame wide-search pass.
  int stride = std::min(4, shot.frame_count() - 1);
  VDB_ASSIGN_OR_RETURN(
      ProbeSet slow, TrackProbes(signatures, shot, options, stride,
                                 options.max_shift));
  MotionEstimate estimate = Decide(slow, options);
  if (estimate.label == CameraMotionLabel::kStatic &&
      shot.frame_count() > 9) {
    VDB_ASSIGN_OR_RETURN(
        ProbeSet long_stride,
        TrackProbes(signatures, shot, options, 8, options.max_shift));
    MotionEstimate zoomed = Decide(long_stride, options);
    if (zoomed.label == CameraMotionLabel::kZoomIn ||
        zoomed.label == CameraMotionLabel::kZoomOut) {
      return zoomed;
    }
    return estimate;
  }
  if (estimate.label != CameraMotionLabel::kComplex) {
    return estimate;
  }
  VDB_ASSIGN_OR_RETURN(
      ProbeSet fast,
      TrackProbes(signatures, shot, options, 1, options.max_shift * 3));
  return Decide(fast, options);
}

Result<std::vector<MotionEstimate>> ClassifyAllShotMotion(
    const VideoSignatures& signatures, const std::vector<Shot>& shots,
    const MotionOptions& options) {
  std::vector<MotionEstimate> out;
  out.reserve(shots.size());
  for (const Shot& shot : shots) {
    VDB_ASSIGN_OR_RETURN(MotionEstimate e,
                         ClassifyShotMotion(signatures, shot, options));
    out.push_back(e);
  }
  return out;
}

}  // namespace vdb
