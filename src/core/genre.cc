#include "core/genre.h"

#include <algorithm>

#include "util/string_util.h"

namespace vdb {
namespace {

// A representative subset of the Library of Congress moving-image genre
// terms (the full guide lists 133).
const std::vector<std::string_view>& GenreTable() {
  static const std::vector<std::string_view>* kGenres =
      new std::vector<std::string_view>{
          "adaptation",   "adventure",  "biographical", "comedy",
          "crime",        "dance",      "disaster",     "documentary",
          "domestic",     "espionage",  "experimental", "fantasy",
          "historical",   "horror",     "instructional", "interview",
          "journalism",   "legal",      "medical",      "melodrama",
          "music",        "musical",    "mystery",      "nature",
          "news",         "political",  "romance",      "science fiction",
          "show business", "sports",    "talk",         "thriller",
          "travelogue",   "war",        "western",      "youth",
      };
  return *kGenres;
}

// A representative subset of the 35 forms.
const std::vector<std::string_view>& FormTable() {
  static const std::vector<std::string_view>* kForms =
      new std::vector<std::string_view>{
          "animation",
          "feature",
          "serial",
          "short",
          "television commercial",
          "television mini-series",
          "television pilot",
          "television series",
          "television special",
          "trailer",
      };
  return *kForms;
}

Result<int> LookUp(const std::vector<std::string_view>& table,
                   std::string_view name, const char* kind) {
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound(
      StrFormat("unknown %s '%.*s'", kind, static_cast<int>(name.size()),
                name.data()));
}

}  // namespace

const std::vector<std::string_view>& GenreNames() { return GenreTable(); }
const std::vector<std::string_view>& FormNames() { return FormTable(); }

Result<int> GenreIdByName(std::string_view name) {
  return LookUp(GenreTable(), name, "genre");
}

Result<int> FormIdByName(std::string_view name) {
  return LookUp(FormTable(), name, "form");
}

bool VideoClassification::HasGenre(int genre_id) const {
  return std::find(genre_ids.begin(), genre_ids.end(), genre_id) !=
         genre_ids.end();
}

Result<VideoClassification> MakeClassification(
    const std::vector<std::string>& genres, const std::string& form) {
  VideoClassification c;
  for (const std::string& g : genres) {
    VDB_ASSIGN_OR_RETURN(int id, GenreIdByName(g));
    if (!c.HasGenre(id)) {
      c.genre_ids.push_back(id);
    }
  }
  VDB_ASSIGN_OR_RETURN(c.form_id, FormIdByName(form));
  return c;
}

std::string ClassificationLabel(const VideoClassification& c) {
  std::vector<std::string> names;
  for (int id : c.genre_ids) {
    if (id >= 0 && id < static_cast<int>(GenreTable().size())) {
      names.emplace_back(GenreTable()[static_cast<size_t>(id)]);
    }
  }
  std::string label = StrJoin(names, ", ");
  if (c.form_id >= 0 && c.form_id < static_cast<int>(FormTable().size())) {
    if (!label.empty()) label += ' ';
    label += FormTable()[static_cast<size_t>(c.form_id)];
  }
  return label;
}

bool ClassFilter::Matches(const VideoClassification& c) const {
  if (form_id >= 0 && c.form_id != form_id) return false;
  if (genre_id >= 0 && !c.HasGenre(genre_id)) return false;
  return true;
}

}  // namespace vdb
