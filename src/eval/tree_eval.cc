#include "eval/tree_eval.h"

#include <unordered_map>

#include "util/logging.h"

namespace vdb {

RelationMetrics EvaluateRelationship(const VideoSignatures& signatures,
                                     const std::vector<Shot>& shots,
                                     const std::vector<int>& scene_ids,
                                     const SceneTreeOptions& options) {
  VDB_CHECK(shots.size() == scene_ids.size())
      << shots.size() << " shots vs " << scene_ids.size() << " scene ids";
  RelationMetrics m;
  for (size_t a = 0; a < shots.size(); ++a) {
    for (size_t b = a + 1; b < shots.size(); ++b) {
      bool related = ShotsRelated(signatures, shots[a], shots[b], options);
      bool same_scene = scene_ids[a] == scene_ids[b];
      if (related && same_scene) {
        ++m.true_positive;
      } else if (related && !same_scene) {
        ++m.false_positive;
      } else if (!related && same_scene) {
        ++m.false_negative;
      } else {
        ++m.true_negative;
      }
    }
  }
  return m;
}

namespace {

int LcaLevel(const SceneTree& tree, int leaf_a, int leaf_b) {
  std::unordered_map<int, int> depth_of;
  for (int x = leaf_a; x != -1; x = tree.node(x).parent) {
    depth_of.emplace(x, tree.node(x).level);
  }
  for (int x = leaf_b; x != -1; x = tree.node(x).parent) {
    auto it = depth_of.find(x);
    if (it != depth_of.end()) return tree.node(x).level;
  }
  return tree.Height();
}

}  // namespace

TreeQuality EvaluateTree(const SceneTree& tree,
                         const std::vector<int>& scene_ids) {
  VDB_CHECK(static_cast<int>(scene_ids.size()) == tree.shot_count())
      << scene_ids.size() << " scene ids for " << tree.shot_count()
      << " shots";
  TreeQuality q;
  q.height = tree.Height();
  q.node_count = tree.node_count();
  for (const SceneNode& n : tree.nodes()) {
    if (!n.IsLeaf()) ++q.internal_count;
  }

  double same_sum = 0.0;
  long same_count = 0;
  double cross_sum = 0.0;
  long cross_count = 0;
  int n = tree.shot_count();
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      int level = LcaLevel(tree, tree.LeafForShot(a), tree.LeafForShot(b));
      if (scene_ids[static_cast<size_t>(a)] ==
          scene_ids[static_cast<size_t>(b)]) {
        same_sum += level;
        ++same_count;
      } else {
        cross_sum += level;
        ++cross_count;
      }
    }
  }
  q.mean_lca_level_same_scene = same_count > 0 ? same_sum / same_count : 0.0;
  q.mean_lca_level_cross_scene =
      cross_count > 0 ? cross_sum / cross_count : 0.0;
  return q;
}

}  // namespace vdb
