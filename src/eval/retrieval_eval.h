#ifndef VDB_EVAL_RETRIEVAL_EVAL_H_
#define VDB_EVAL_RETRIEVAL_EVAL_H_

#include <map>
#include <string>
#include <vector>

namespace vdb {

// Fraction of retrieved items sharing the query's class (precision@k for
// one query).
double ClassPrecision(const std::string& query_class,
                      const std::vector<std::string>& retrieved_classes);

// Mean precision@k per query class over many queries.
struct RetrievalSummary {
  // class -> (sum of per-query precisions, query count)
  std::map<std::string, std::pair<double, int>> per_class;
  double overall_sum = 0.0;
  int overall_count = 0;

  void Record(const std::string& query_class, double precision) {
    auto& slot = per_class[query_class];
    slot.first += precision;
    ++slot.second;
    overall_sum += precision;
    ++overall_count;
  }

  double OverallMean() const {
    return overall_count > 0 ? overall_sum / overall_count : 0.0;
  }
  double ClassMean(const std::string& cls) const {
    auto it = per_class.find(cls);
    if (it == per_class.end() || it->second.second == 0) return 0.0;
    return it->second.first / it->second.second;
  }
};

}  // namespace vdb

#endif  // VDB_EVAL_RETRIEVAL_EVAL_H_
