#ifndef VDB_EVAL_METRICS_H_
#define VDB_EVAL_METRICS_H_

#include <vector>

namespace vdb {

// Recall / precision of detected shot boundaries against ground truth
// (Section 5.1). A detection within `tolerance_frames` of an unmatched true
// boundary counts as correct; each true boundary can be matched once.
struct DetectionMetrics {
  int true_boundaries = 0;
  int detected = 0;
  int correct = 0;

  double Recall() const {
    return true_boundaries > 0
               ? static_cast<double>(correct) / true_boundaries
               : 1.0;
  }
  double Precision() const {
    return detected > 0 ? static_cast<double>(correct) / detected : 1.0;
  }
  double F1() const {
    double r = Recall();
    double p = Precision();
    return r + p > 0 ? 2 * r * p / (r + p) : 0.0;
  }
};

// Matches `detected` boundary positions against `truth` greedily in order.
// Both lists must be ascending.
DetectionMetrics EvaluateBoundaries(const std::vector<int>& truth,
                                    const std::vector<int>& detected,
                                    int tolerance_frames = 1);

// Aggregates per-clip metrics by summing the raw counts (the paper's
// "Total" row of Table 5).
DetectionMetrics SumMetrics(const std::vector<DetectionMetrics>& per_clip);

}  // namespace vdb

#endif  // VDB_EVAL_METRICS_H_
