#ifndef VDB_EVAL_TREE_EVAL_H_
#define VDB_EVAL_TREE_EVAL_H_

#include <vector>

#include "core/scene_tree.h"

namespace vdb {

// Pairwise confusion counts for a binary relation (e.g. RELATIONSHIP's
// "related" verdict against ground-truth "same scene").
struct RelationMetrics {
  long true_positive = 0;
  long false_positive = 0;
  long false_negative = 0;
  long true_negative = 0;

  double Precision() const {
    long d = true_positive + false_positive;
    return d > 0 ? static_cast<double>(true_positive) / d : 1.0;
  }
  double Recall() const {
    long d = true_positive + false_negative;
    return d > 0 ? static_cast<double>(true_positive) / d : 1.0;
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  }
};

// Evaluates the RELATIONSHIP verdict over all shot pairs against the
// ground-truth scene ids (same id == should be related).
RelationMetrics EvaluateRelationship(const VideoSignatures& signatures,
                                     const std::vector<Shot>& shots,
                                     const std::vector<int>& scene_ids,
                                     const SceneTreeOptions& options);

// Structural quality of a scene tree against ground-truth scene ids. The
// LCA of two same-scene shots should sit lower (smaller level) than the
// LCA of two different-scene shots.
struct TreeQuality {
  int height = 0;
  int node_count = 0;
  int internal_count = 0;
  double mean_lca_level_same_scene = 0.0;
  double mean_lca_level_cross_scene = 0.0;

  // Positive when same-scene pairs meet lower in the tree than cross-scene
  // pairs — the tree reflects the video's scene structure.
  double SeparationScore() const {
    return mean_lca_level_cross_scene - mean_lca_level_same_scene;
  }
};

TreeQuality EvaluateTree(const SceneTree& tree,
                         const std::vector<int>& scene_ids);

}  // namespace vdb

#endif  // VDB_EVAL_TREE_EVAL_H_
