#include "eval/retrieval_eval.h"

namespace vdb {

double ClassPrecision(const std::string& query_class,
                      const std::vector<std::string>& retrieved_classes) {
  if (retrieved_classes.empty()) return 0.0;
  int hits = 0;
  for (const std::string& cls : retrieved_classes) {
    if (cls == query_class) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(retrieved_classes.size());
}

}  // namespace vdb
