#ifndef VDB_EVAL_SBD_EXPERIMENT_H_
#define VDB_EVAL_SBD_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/sbd_baseline.h"
#include "core/shot_detector.h"
#include "eval/metrics.h"
#include "synth/workload.h"
#include "util/result.h"

namespace vdb {

// Parameters of a Table-5-style detection experiment.
struct SbdExperimentOptions {
  // Shrinks every clip's duration and cut count; 1.0 is the paper's full
  // 4.5 hours of footage (~50k frames at 3 fps).
  double scale = 0.2;
  uint64_t seed = 2000;
  // Detections within this many frames of a true boundary count.
  int tolerance_frames = 1;
  CameraTrackingOptions detector;
};

// One evaluated clip.
struct ClipRunResult {
  ClipProfile profile;
  int frames = 0;
  int true_changes = 0;
  DetectionMetrics camera_tracking;
  SbdStageStats stage_stats;
  double render_seconds = 0.0;
  double detect_seconds = 0.0;
};

struct Table5RunResult {
  std::vector<ClipRunResult> clips;
  DetectionMetrics total;
};

// Renders every Table-5 clip and runs the camera-tracking detector.
Result<Table5RunResult> RunTable5Experiment(
    const SbdExperimentOptions& options);

// Renders one clip and runs an arbitrary baseline on it.
Result<DetectionMetrics> RunBaselineOnClip(const ClipProfile& profile,
                                           const SbdBaseline& baseline,
                                           double scale, uint64_t seed,
                                           int tolerance_frames);

}  // namespace vdb

#endif  // VDB_EVAL_SBD_EXPERIMENT_H_
