#include "eval/sbd_experiment.h"

#include "synth/renderer.h"
#include "util/stopwatch.h"

namespace vdb {

Result<Table5RunResult> RunTable5Experiment(
    const SbdExperimentOptions& options) {
  Table5RunResult run;
  CameraTrackingDetector detector(options.detector);
  std::vector<DetectionMetrics> all;

  for (const ClipProfile& profile : Table5Profiles()) {
    Storyboard board =
        MakeStoryboardFromProfile(profile, options.scale, options.seed);
    Stopwatch render_watch;
    VDB_ASSIGN_OR_RETURN(SyntheticVideo clip, RenderStoryboard(board));
    double render_seconds = render_watch.ElapsedSeconds();

    Stopwatch detect_watch;
    VDB_ASSIGN_OR_RETURN(ShotDetectionResult detection,
                         detector.Detect(clip.video));
    double detect_seconds = detect_watch.ElapsedSeconds();

    ClipRunResult result;
    result.profile = profile;
    result.frames = clip.video.frame_count();
    result.true_changes = static_cast<int>(clip.truth.boundaries.size());
    result.camera_tracking =
        EvaluateBoundaries(clip.truth.boundaries, detection.boundaries,
                           options.tolerance_frames);
    result.stage_stats = detection.stage_stats;
    result.render_seconds = render_seconds;
    result.detect_seconds = detect_seconds;
    all.push_back(result.camera_tracking);
    run.clips.push_back(std::move(result));
  }
  run.total = SumMetrics(all);
  return run;
}

Result<DetectionMetrics> RunBaselineOnClip(const ClipProfile& profile,
                                           const SbdBaseline& baseline,
                                           double scale, uint64_t seed,
                                           int tolerance_frames) {
  Storyboard board = MakeStoryboardFromProfile(profile, scale, seed);
  VDB_ASSIGN_OR_RETURN(SyntheticVideo clip, RenderStoryboard(board));
  VDB_ASSIGN_OR_RETURN(std::vector<int> boundaries,
                       baseline.DetectBoundaries(clip.video));
  return EvaluateBoundaries(clip.truth.boundaries, boundaries,
                            tolerance_frames);
}

}  // namespace vdb
