#include "eval/metrics.h"

#include <cstdlib>

namespace vdb {

DetectionMetrics EvaluateBoundaries(const std::vector<int>& truth,
                                    const std::vector<int>& detected,
                                    int tolerance_frames) {
  DetectionMetrics m;
  m.true_boundaries = static_cast<int>(truth.size());
  m.detected = static_cast<int>(detected.size());

  std::vector<bool> used(truth.size(), false);
  for (int d : detected) {
    // Find the nearest unmatched true boundary within tolerance.
    int best = -1;
    int best_dist = tolerance_frames + 1;
    for (size_t t = 0; t < truth.size(); ++t) {
      if (used[t]) continue;
      int dist = std::abs(truth[t] - d);
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(t);
      }
      if (truth[t] > d + tolerance_frames) break;
    }
    if (best >= 0) {
      used[static_cast<size_t>(best)] = true;
      ++m.correct;
    }
  }
  return m;
}

DetectionMetrics SumMetrics(const std::vector<DetectionMetrics>& per_clip) {
  DetectionMetrics total;
  for (const DetectionMetrics& m : per_clip) {
    total.true_boundaries += m.true_boundaries;
    total.detected += m.detected;
    total.correct += m.correct;
  }
  return total;
}

}  // namespace vdb
