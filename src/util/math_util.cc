#include "util/math_util.h"

namespace vdb {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double PopulationVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double PaperVariance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size() - 1);
}

}  // namespace vdb
