#ifndef VDB_UTIL_FS_H_
#define VDB_UTIL_FS_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace vdb {

// Filesystem helpers for the durable stores (core/catalog_io, store/).
// Everything returns Status/Result like the rest of the library; the one
// novelty is the fault hook, which lets a test simulate a crash at every
// durability-relevant point of an atomic publish.

// Invoked immediately *before* each durability-relevant operation with a
// label like "segment:write" or "manifest:rename". Returning false aborts
// the enclosing publish right there with kIoError, leaving the on-disk
// state exactly as a process crash at that instant would: earlier
// operations are done (and synced), the labelled one and everything after
// it never happen. A null hook means "never crash".
using FaultHook = std::function<bool(std::string_view point)>;

// Reads a whole file. kNotFound if it does not exist, kIoError otherwise.
Result<std::string> ReadFileToString(const std::string& path);

// Crash-safe file publish: writes `path + ".tmp"`, fsyncs it, renames it
// over `path`, then fsyncs the parent directory so the rename itself is
// durable. After a crash at any point, `path` holds either its previous
// contents (or absence) or the complete new contents — never a torn mix.
//
// `hook` (see FaultHook) is consulted before each step with the labels
// "<point_prefix>:write", ":fsync", ":rename", ":dirsync".
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const FaultHook& hook = nullptr,
                       const std::string& point_prefix = "file");

// Names (not paths) of the entries in `dir`, excluding "." and "..".
Result<std::vector<std::string>> ListDir(const std::string& dir);

bool FileExists(const std::string& path);
bool IsDirectory(const std::string& path);

// mkdir -p, one level (the stores only ever need one).
Status CreateDirIfMissing(const std::string& dir);

// unlink; removing a file that is already gone is OK.
Status RemoveFileIfExists(const std::string& path);

// Hardlinks `from` to `to`, falling back to a byte copy when the link is
// not possible (cross-device, or a filesystem without hardlinks). `to` must
// not already exist. Used to share content-addressed segments between a
// store and the per-shard stores split off of it.
Status LinkOrCopyFile(const std::string& from, const std::string& to);

// fsyncs a directory so completed renames/unlinks inside it are durable.
Status SyncDir(const std::string& dir);

// The directory part of `path` ("." when there is none).
std::string DirName(const std::string& path);

}  // namespace vdb

#endif  // VDB_UTIL_FS_H_
