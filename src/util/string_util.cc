#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace vdb {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FormatMinSec(double seconds) {
  int total = static_cast<int>(std::lround(seconds));
  int minutes = total / 60;
  int secs = total % 60;
  return StrFormat("%d:%02d", minutes, secs);
}

}  // namespace vdb
