#ifndef VDB_UTIL_TABLE_PRINTER_H_
#define VDB_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace vdb {

// Renders aligned text tables (markdown pipe style). Used by the benchmark
// harnesses to print paper-style tables.
//
//   TablePrinter t({"Shot", "Recall", "Precision"});
//   t.AddRow({"#1", "0.97", "0.87"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a data row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  // Appends a horizontal separator row (rendered like the header rule).
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Number of data rows (separators excluded).
  size_t row_count() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace vdb

#endif  // VDB_UTIL_TABLE_PRINTER_H_
