#include "util/status.h"

namespace vdb {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace vdb
