#ifndef VDB_UTIL_STRING_UTIL_H_
#define VDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace vdb {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

// True if `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Formats a double with `digits` decimal places ("3.14").
std::string FormatDouble(double v, int digits);

// Formats a duration in seconds as "mm:ss" (paper's Table 5 style).
std::string FormatMinSec(double seconds);

}  // namespace vdb

#endif  // VDB_UTIL_STRING_UTIL_H_
