#include "util/random.h"

#include <cmath>

namespace vdb {

double Pcg32::NextGaussian() {
  // Box-Muller; draw u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace vdb
