#ifndef VDB_UTIL_STATUS_H_
#define VDB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace vdb {

// Error categories used across the library. Kept deliberately small; the
// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kInternal = 9,
  kUnavailable = 10,
};

// Returns a stable, human-readable name ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

// Status carries the outcome of a fallible operation. The library does not
// use exceptions; every operation that can fail returns Status (or
// Result<T>, see result.h). Cheap to copy in the OK case.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace vdb

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is not OK.
#define VDB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::vdb::Status vdb_status_macro_tmp = (expr); \
    if (!vdb_status_macro_tmp.ok()) {            \
      return vdb_status_macro_tmp;               \
    }                                            \
  } while (false)

#endif  // VDB_UTIL_STATUS_H_
