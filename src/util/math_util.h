#ifndef VDB_UTIL_MATH_UTIL_H_
#define VDB_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace vdb {

// Clamps v to [lo, hi].
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// Clamps an int to the valid 8-bit channel range.
inline uint8_t ClampToByte(int v) {
  return static_cast<uint8_t>(Clamp(v, 0, 255));
}
inline uint8_t ClampToByte(double v) {
  return static_cast<uint8_t>(Clamp(static_cast<int>(std::lround(v)), 0, 255));
}

// Population mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Population variance (divide by N); 0 for fewer than 2 values.
double PopulationVariance(const std::vector<double>& values);

// The paper's variance (Eqs. 3 and 5) divides by (l - k), i.e. N - 1 for a
// shot with N frames, while the mean (Eqs. 4, 6) divides by N. Returns 0 for
// fewer than 2 values.
double PaperVariance(const std::vector<double>& values);

// True if |a - b| <= eps.
inline bool Near(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) <= eps;
}

}  // namespace vdb

#endif  // VDB_UTIL_MATH_UTIL_H_
