#ifndef VDB_UTIL_RESULT_H_
#define VDB_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace vdb {

// Result<T> holds either a value of type T or a non-OK Status. This is the
// return type for fallible operations that produce a value (the library does
// not use exceptions).
//
// Usage:
//   Result<Video> v = LoadVideo(path);
//   if (!v.ok()) return v.status();
//   Use(v.value());
template <typename T>
class Result {
 public:
  // Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  // Constructs from a non-OK status (implicit so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      // A Result built from a Status must carry an error; an OK status with
      // no value would make value() undefined.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // Precondition: ok(). Aborts with a diagnostic otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() called on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace vdb

// Assigns the value of a Result expression to `lhs`, or returns its error
// status from the enclosing function.
#define VDB_ASSIGN_OR_RETURN(lhs, expr)            \
  VDB_ASSIGN_OR_RETURN_IMPL_(                      \
      VDB_MACRO_CONCAT_(vdb_result_tmp_, __LINE__), lhs, expr)

#define VDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define VDB_MACRO_CONCAT_INNER_(a, b) a##b
#define VDB_MACRO_CONCAT_(a, b) VDB_MACRO_CONCAT_INNER_(a, b)

#endif  // VDB_UTIL_RESULT_H_
