#ifndef VDB_UTIL_LOGGING_H_
#define VDB_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vdb {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global log threshold; messages below it are discarded. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Turns a streamed expression into void so it can sit on one arm of a
// ternary whose other arm is (void)0.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace vdb

#define VDB_LOG(level)                                                 \
  ::vdb::internal_logging::LogMessage(::vdb::LogLevel::k##level,       \
                                      __FILE__, __LINE__)              \
      .stream()

// Invariant check, enabled in all build modes. On failure, logs the failed
// condition plus any streamed detail and aborts.
#define VDB_CHECK(condition)                                  \
  (condition) ? (void)0                                       \
              : ::vdb::internal_logging::Voidify() &          \
                    ::vdb::internal_logging::FatalLogMessage( \
                        __FILE__, __LINE__, #condition)       \
                        .stream()

#endif  // VDB_UTIL_LOGGING_H_
