#include "util/binary_io.h"

#include <cstring>

#include "util/string_util.h"

namespace vdb {

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s);
}

Status BinaryReader::Need(size_t n, const char* what) {
  if (offset_ + n > data_.size()) {
    return Status::Corruption(
        StrFormat("truncated buffer reading %s (need %zu, have %zu)", what,
                  n, data_.size() - offset_));
  }
  return Status::Ok();
}

Result<uint8_t> BinaryReader::GetU8(const char* what) {
  VDB_RETURN_IF_ERROR(Need(1, what));
  return static_cast<uint8_t>(data_[offset_++]);
}

Result<uint32_t> BinaryReader::GetU32(const char* what) {
  VDB_RETURN_IF_ERROR(Need(4, what));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[offset_ + i]))
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64(const char* what) {
  VDB_ASSIGN_OR_RETURN(uint32_t lo, GetU32(what));
  VDB_ASSIGN_OR_RETURN(uint32_t hi, GetU32(what));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<int32_t> BinaryReader::GetI32(const char* what) {
  VDB_ASSIGN_OR_RETURN(uint32_t v, GetU32(what));
  return static_cast<int32_t>(v);
}

Result<double> BinaryReader::GetDouble(const char* what) {
  VDB_ASSIGN_OR_RETURN(uint64_t bits, GetU64(what));
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString(const char* what,
                                            size_t max_len) {
  VDB_ASSIGN_OR_RETURN(uint32_t len, GetU32(what));
  if (len > max_len) {
    return Status::Corruption(
        StrFormat("implausible %s length %u", what, len));
  }
  VDB_RETURN_IF_ERROR(Need(len, what));
  std::string out(data_.substr(offset_, len));
  offset_ += len;
  return out;
}

}  // namespace vdb
