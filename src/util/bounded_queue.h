#ifndef VDB_UTIL_BOUNDED_QUEUE_H_
#define VDB_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace vdb {

// A blocking multi-producer multi-consumer queue with a hard capacity: the
// backpressure primitive of the streaming ingest pipeline (stream/). A
// producer that outruns its consumer blocks in Push once `capacity` items
// are queued, so memory between two pipeline stages is bounded by
// capacity × item size no matter how lopsided the stage costs are.
//
// Lifecycle: Close() ends the stream. After Close, Push refuses new items
// (returns false) and wakes every blocked producer; Pop keeps draining
// what was queued before the close and returns false only once the queue
// is empty — so a closed queue delivers every accepted item exactly once.
// Close is idempotent and safe from any thread, including a signal path
// that wants to cancel a pipeline mid-flight.
//
// high_water() reports the largest size ever reached; the pipeline tests
// assert it never exceeds capacity (backpressure engaged, no unbounded
// buffering).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. True when the item was enqueued; false
  // when the queue was closed (the item is dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    ++total_pushed_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking variant: false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
      ++total_pushed_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push that leaves *item intact on failure, so a producer
  // that is backpressured can keep the item and retry later (the ingest
  // farm's shared signature workers do: a blocked shared worker would stall
  // every tenant, so they stash instead of blocking).
  bool TryPush(T* item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(*item));
      if (items_.size() > high_water_) high_water_ = items_.size();
      ++total_pushed_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. True with *out filled, or
  // false once the queue is closed and fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking variant of Pop: false when the queue is currently empty,
  // whether open or closed. A false return says nothing about the stream
  // being finished — pair it with closed() + size() (or a producer-side
  // completion signal) to distinguish "no work right now" from "done".
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Ends the stream: wakes every blocked producer and consumer. Items
  // already queued remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // Largest size ever reached (≤ capacity by construction).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  // Items accepted by Push/TryPush over the queue's lifetime.
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t high_water_ = 0;
  uint64_t total_pushed_ = 0;
  bool closed_ = false;
};

}  // namespace vdb

#endif  // VDB_UTIL_BOUNDED_QUEUE_H_
