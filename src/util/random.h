#ifndef VDB_UTIL_RANDOM_H_
#define VDB_UTIL_RANDOM_H_

#include <cstdint>

namespace vdb {

// Deterministic PCG32 pseudo-random generator (O'Neill, pcg-random.org,
// pcg32_random_r variant). Used everywhere randomness is needed so that
// synthetic workloads, tests, and benchmarks are exactly reproducible from a
// seed.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  // Uniform in [0, 2^32).
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire-style rejection to
  // avoid modulo bias.
  uint32_t NextBounded(uint32_t bound) {
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(
                    NextBounded(static_cast<uint32_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return NextU32() * (1.0 / 4294967296.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard-normal variate via Box-Muller (one value per call; the twin is
  // discarded for simplicity).
  double NextGaussian();

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace vdb

#endif  // VDB_UTIL_RANDOM_H_
