#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace vdb {
namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(
      StrFormat("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

// True when the hook (if any) lets the labelled operation proceed.
bool Proceed(const FaultHook& hook, const std::string& prefix,
             const char* step) {
  return !hook || hook(prefix + ":" + step);
}

Status SimulatedCrash(const std::string& prefix, const char* step) {
  return Status::IoError("simulated crash at " + prefix + ":" + step);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const FaultHook& hook,
                       const std::string& point_prefix) {
  const std::string tmp = path + ".tmp";
  if (!Proceed(hook, point_prefix, "write")) {
    return SimulatedCrash(point_prefix, "write");
  }
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Errno("open", tmp);
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (!Proceed(hook, point_prefix, "fsync")) {
    ::close(fd);
    return SimulatedCrash(point_prefix, "fsync");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", tmp);
  }
  if (::close(fd) != 0) {
    return Errno("close", tmp);
  }
  if (!Proceed(hook, point_prefix, "rename")) {
    return SimulatedCrash(point_prefix, "rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", tmp);
  }
  if (!Proceed(hook, point_prefix, "dirsync")) {
    return SimulatedCrash(point_prefix, "dirsync");
  }
  return SyncDir(DirName(path));
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such directory: " + dir);
    }
    return Errno("opendir", dir);
  }
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(d);
    if (entry == nullptr) {
      if (errno != 0) {
        ::closedir(d);
        return Errno("readdir", dir);
      }
      break;
    }
    std::string name = entry->d_name;
    if (name != "." && name != "..") {
      names.push_back(std::move(name));
    }
  }
  ::closedir(d);
  return names;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Errno("mkdir", dir);
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) {
    return Status::Ok();
  }
  return Errno("unlink", path);
}

Status LinkOrCopyFile(const std::string& from, const std::string& to) {
  if (::link(from.c_str(), to.c_str()) == 0) {
    return Status::Ok();
  }
  if (errno != EXDEV && errno != EPERM && errno != EMLINK &&
      errno != EOPNOTSUPP) {
    return Errno("link", from);
  }
  VDB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(from));
  int fd = ::open(to.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Errno("open", to);
  }
  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written,
                        contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write", to);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", to);
  }
  if (::close(fd) != 0) {
    return Errno("close", to);
  }
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Errno("open dir", dir);
  }
  // Some filesystems refuse fsync on directories; treat EINVAL as "nothing
  // to do" the way other stores do.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    ::close(fd);
    return Errno("fsync dir", dir);
  }
  ::close(fd);
  return Status::Ok();
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace vdb
