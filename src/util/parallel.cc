#include "util/parallel.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace vdb {

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  num_threads_ = num_threads;
  if (num_threads_ <= 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok()) {
    first_error_ = std::move(status);
    error_flag_.store(true, std::memory_order_release);
  }
}

void ThreadPool::RunTask(const std::function<Status()>& task) {
  Status s = task();
  if (!s.ok()) RecordError(std::move(s));
}

void ThreadPool::Submit(std::function<Status()> task) {
  if (workers_.empty()) {
    // Inline mode: count the task as pending so nested Submit from inside
    // a task keeps Wait()'s accounting consistent, then run it here.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    RunTask(task);
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) idle_cv_.notify_all();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  Status out = std::move(first_error_);
  first_error_ = Status::Ok();
  error_flag_.store(false, std::memory_order_release);
  return out;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Wait();
  // Shared counter: each worker task claims the next unclaimed index until
  // none remain or a failure is recorded. One task per worker keeps queue
  // traffic at O(threads) while still balancing dynamically per index.
  auto next = std::make_shared<std::atomic<int>>(0);
  int tasks = std::min(std::max(num_threads_, 1), n);
  for (int t = 0; t < tasks; ++t) {
    Submit([this, next, n, &fn]() -> Status {
      for (int i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        if (has_error()) return Status::Ok();
        VDB_RETURN_IF_ERROR(fn(i));
      }
      return Status::Ok();
    });
  }
  // The tasks capture fn by reference, so they must all finish before this
  // frame unwinds — Wait() guarantees that and surfaces the first error.
  return Wait();
}

Status ParallelFor(int n, int num_threads,
                   const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::Ok();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) {
      VDB_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }
  ThreadPool pool(num_threads);
  return pool.ParallelFor(n, fn);
}

}  // namespace vdb
