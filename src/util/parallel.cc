#include "util/parallel.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace vdb {

namespace {
// The pool whose task the current thread is running, if any. Lets Submit
// distinguish nested submissions (accepted while draining) from outside
// callers (rejected while draining).
thread_local ThreadPool* tls_current_pool = nullptr;
}  // namespace

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  num_threads_ = num_threads;
  if (num_threads_ <= 1) return;  // inline mode: no workers
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (state_ == State::kRunning) state_ = State::kDraining;
    // Drain: in-flight tasks (and their nested submissions, which Submit
    // still accepts from worker threads) run to completion.
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    state_ = State::kStopped;
  }
  work_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok()) {
    first_error_ = std::move(status);
    error_flag_.store(true, std::memory_order_release);
  }
}

void ThreadPool::RunTask(const std::function<Status()>& task) {
  ThreadPool* prev = tls_current_pool;
  tls_current_pool = this;
  Status s = task();
  tls_current_pool = prev;
  if (!s.ok()) RecordError(std::move(s));
}

bool ThreadPool::Submit(std::function<Status()> task) {
  const bool nested = tls_current_pool == this;
  if (workers_.empty()) {
    // Inline mode: count the task as pending so nested Submit from inside
    // a task keeps Wait()'s accounting consistent, then run it here.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (state_ == State::kStopped) return false;
      if (state_ == State::kDraining && !nested) return false;
      ++pending_;
    }
    RunTask(task);
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) idle_cv_.notify_all();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kStopped) return false;
    if (state_ == State::kDraining && !nested) return false;
    ++pending_;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  Status out = std::move(first_error_);
  first_error_ = Status::Ok();
  error_flag_.store(false, std::memory_order_release);
  return out;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<Status()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return state_ == State::kStopped || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopped with nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(int n, const std::function<Status(int)>& fn) {
  if (n <= 0) return Wait();
  // Shared counter: each worker task claims the next unclaimed index until
  // none remain or a failure is recorded. One task per worker keeps queue
  // traffic at O(threads) while still balancing dynamically per index.
  auto next = std::make_shared<std::atomic<int>>(0);
  int tasks = std::min(std::max(num_threads_, 1), n);
  for (int t = 0; t < tasks; ++t) {
    bool accepted = Submit([this, next, n, &fn]() -> Status {
      for (int i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        if (has_error()) return Status::Ok();
        VDB_RETURN_IF_ERROR(fn(i));
      }
      return Status::Ok();
    });
    if (!accepted) {
      // Pool is draining/stopped. Tasks already accepted will still run;
      // wait for them, then report the rejection.
      Status drained = Wait();
      if (!drained.ok()) return drained;
      return Status::FailedPrecondition("ParallelFor on a shut-down pool");
    }
  }
  // The tasks capture fn by reference, so they must all finish before this
  // frame unwinds — Wait() guarantees that and surfaces the first error.
  return Wait();
}

Status ParallelFor(int n, int num_threads,
                   const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::Ok();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) {
      VDB_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }
  ThreadPool pool(num_threads);
  return pool.ParallelFor(n, fn);
}

}  // namespace vdb
