#include "util/parallel.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

namespace vdb {

int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

Status ParallelFor(int n, int num_threads,
                   const std::function<Status(int)>& fn) {
  if (n <= 0) return Status::Ok();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (int i = 0; i < n; ++i) {
      VDB_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }

  std::mutex mu;
  Status first_error;
  auto worker = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error.ok()) return;  // stop early on failure
      }
      Status s = fn(i);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = s;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  int chunk = (n + num_threads - 1) / num_threads;
  for (int t = 0; t < num_threads; ++t) {
    int begin = t * chunk;
    int end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back(worker, begin, end);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return first_error;
}

}  // namespace vdb
