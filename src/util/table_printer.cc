#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace vdb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

size_t TablePrinter::row_count() const {
  size_t count = 0;
  for (const Row& row : rows_) {
    if (!row.separator) ++count;
  }
  return count;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto print_rule = [&]() {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };

  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace vdb
