#include "util/logging.h"

#include <atomic>

namespace vdb {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << '[' << LevelTag(level) << ' ' << Basename(file) << ':' << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ':' << line << "] Check failed: "
          << condition << ' ';
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << '\n';
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace vdb
