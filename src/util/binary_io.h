#ifndef VDB_UTIL_BINARY_IO_H_
#define VDB_UTIL_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace vdb {

// Little-endian binary encoder into an owned buffer. Used by the on-disk
// catalog format; keeps all byte-order handling in one place.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutDouble(double v);
  // Length-prefixed (u32) byte string.
  void PutString(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Matching decoder over a borrowed buffer; every read returns kCorruption
// on underflow, so truncation surfaces as a clean error.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8(const char* what);
  Result<uint32_t> GetU32(const char* what);
  Result<uint64_t> GetU64(const char* what);
  Result<int32_t> GetI32(const char* what);
  Result<double> GetDouble(const char* what);
  // Length-prefixed string; `max_len` guards against absurd lengths in
  // corrupted files.
  Result<std::string> GetString(const char* what, size_t max_len = 1 << 20);

  size_t remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  Status Need(size_t n, const char* what);

  std::string_view data_;
  size_t offset_ = 0;
};

}  // namespace vdb

#endif  // VDB_UTIL_BINARY_IO_H_
