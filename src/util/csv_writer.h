#ifndef VDB_UTIL_CSV_WRITER_H_
#define VDB_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace vdb {

// Accumulates rows and writes an RFC-4180-style CSV file. Cells containing
// commas, quotes, or newlines are quoted. Used by benches to dump raw series
// alongside the printed tables.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Writes header plus all rows to `path`, overwriting.
  Status WriteFile(const std::string& path) const;

  std::string ToString() const;

 private:
  static std::string EscapeCell(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdb

#endif  // VDB_UTIL_CSV_WRITER_H_
