#ifndef VDB_UTIL_PARALLEL_H_
#define VDB_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace vdb {

// Number of hardware threads, at least 1.
int HardwareThreads();

// A reusable pool of worker threads with a dynamic work queue: tasks are
// pulled one at a time by whichever worker frees up first, so uneven task
// costs balance automatically (unlike static block partitioning).
//
// Error handling: every task returns Status. The pool remembers the first
// non-OK status any task produced; Wait() returns it and rearms the pool
// for the next batch. Tasks keep running after a failure unless they opt
// out by checking has_error() (ParallelFor does).
//
// Thread safety: Submit() may be called from any thread, including from
// inside a running task (nested submission — Wait() does not return until
// nested tasks finish too). Wait() must not be called from inside a task:
// a worker waiting for the queue it is supposed to drain deadlocks.
//
// Lifecycle: the pool moves kRunning → kDraining → kStopped. Shutdown()
// (or the destructor, which calls it) enters kDraining: tasks already
// queued or running keep going, and *nested* submissions from those tasks
// are still accepted — a task that fans out must be able to finish — but
// Submit from any outside thread is rejected (returns false). Once the
// last task retires the pool is kStopped and every Submit is rejected.
// This closes the race where a task submitting work mid-teardown could
// enqueue into a pool whose workers had already been told to exit.
// Shutdown() is idempotent and safe to call from multiple threads (never
// from inside a task — that deadlocks like Wait()).
//
// num_threads <= 1 is the inline mode: no workers are spawned and Submit()
// runs the task on the calling thread immediately. This keeps single-
// threaded callers deterministic and makes the pool safe to use in code
// that must also run in contexts where spawning threads is undesirable.
class ThreadPool {
 public:
  // num_threads <= 0 uses HardwareThreads().
  explicit ThreadPool(int num_threads = 0);

  // Calls Shutdown(): drains outstanding tasks, then joins the workers.
  // Errors produced by tasks nobody waited for are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues a task; in inline mode the task runs before Submit returns.
  // Returns true if the task was accepted. False once the pool is draining
  // (unless called from inside one of this pool's own tasks) or stopped;
  // the task is dropped without running.
  bool Submit(std::function<Status()> task);

  // Drain-then-reject teardown: stops accepting outside work, waits for
  // every queued/running task (and their nested submissions) to finish,
  // then joins the workers. Idempotent; safe from multiple threads; must
  // not be called from inside a task.
  void Shutdown();

  // Blocks until every submitted task (including tasks submitted by other
  // tasks) has finished, then returns the first non-OK status seen since
  // the previous Wait() — and clears it, so the pool is reusable.
  Status Wait();

  // True once any task has returned non-OK since the last Wait(). Cheap;
  // long loops inside tasks can poll it to stop early after a failure.
  bool has_error() const { return error_flag_.load(std::memory_order_acquire); }

  // Runs fn(0) ... fn(n-1) on the pool with dynamic scheduling: workers
  // claim the next index from a shared counter, so expensive indices do not
  // stall cheap ones. Stops claiming new indices after the first failure.
  // Drains the pool (calls Wait) before returning the first error.
  Status ParallelFor(int n, const std::function<Status(int)>& fn);

 private:
  enum class State { kRunning, kDraining, kStopped };

  void WorkerLoop();
  void RunTask(const std::function<Status()>& task);
  void RecordError(Status status);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signalled when a task is queued
  std::condition_variable idle_cv_;  // signalled when pending_ hits zero
  std::deque<std::function<Status()>> queue_;
  int pending_ = 0;  // queued + currently running
  State state_ = State::kRunning;
  Status first_error_;
  std::atomic<bool> error_flag_{false};

  std::mutex join_mu_;  // serialises concurrent Shutdown() calls at join time
};

// Runs fn(0) ... fn(n-1) across up to `num_threads` threads. Returns the
// first non-OK status any call produced; indices already claimed by other
// workers may still run after a failure. num_threads <= 1 runs inline and
// stops at the first error. Spawns a transient ThreadPool; callers with a
// long-lived pool should prefer ThreadPool::ParallelFor.
Status ParallelFor(int n, int num_threads,
                   const std::function<Status(int)>& fn);

}  // namespace vdb

#endif  // VDB_UTIL_PARALLEL_H_
