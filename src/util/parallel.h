#ifndef VDB_UTIL_PARALLEL_H_
#define VDB_UTIL_PARALLEL_H_

#include <functional>

#include "util/status.h"

namespace vdb {

// Number of hardware threads, at least 1.
int HardwareThreads();

// Runs fn(0) ... fn(n-1) across up to `num_threads` threads (block
// partitioning, so results written to disjoint slots need no locking).
// Returns the first non-OK status any call produced; remaining indices in
// other blocks may still have run. num_threads <= 1 runs inline.
Status ParallelFor(int n, int num_threads,
                   const std::function<Status(int)>& fn);

}  // namespace vdb

#endif  // VDB_UTIL_PARALLEL_H_
