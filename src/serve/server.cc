#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "core/catalog_io.h"
#include "serve/net.h"
#include "store/catalog_store.h"
#include "util/fs.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace vdb {
namespace serve {
namespace {

// QUERY result sizes beyond this are a client bug, not a workload.
constexpr int kMaxTopK = 1 << 16;

Response ErrorResponse(Verb verb, Status status) {
  Response response;
  response.verb = verb;
  response.status = std::move(status);
  return response;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { Stop(); }

Result<Server::LoadedSnapshot> Server::LoadCatalogs(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no catalog paths to load");
  }
  LoadedSnapshot snapshot;
  if (paths.size() == 1 && IsDirectory(paths[0])) {
    // The common store-backed deployment: serve the newest loadable
    // generation directly, without copying any entry.
    store::CatalogStore catalog_store(paths[0]);
    store::OpenStats open_stats;
    VDB_ASSIGN_OR_RETURN(std::unique_ptr<VideoDatabase> opened,
                         catalog_store.Open(&open_stats));
    snapshot.db = std::shared_ptr<const VideoDatabase>(std::move(opened));
    snapshot.store_generation = open_stats.generation;
    snapshot.generations_skipped = open_stats.generations_skipped;
    return snapshot;
  }
  auto db = std::make_shared<VideoDatabase>();
  if (paths.size() == 1) {
    VDB_RETURN_IF_ERROR(LoadCatalog(paths[0], db.get()));
    snapshot.db = std::move(db);
    return snapshot;
  }
  // Several catalogs merge into one database: each loads into a scratch
  // database, then its entries are re-installed in path order, so video ids
  // are dense and deterministic across restarts.
  for (const std::string& path : paths) {
    VideoDatabase scratch;
    if (IsDirectory(path)) {
      store::OpenStats open_stats;
      VDB_RETURN_IF_ERROR(
          store::OpenDatabaseFromStore(path, &scratch, &open_stats));
      snapshot.store_generation = open_stats.generation;
      snapshot.generations_skipped += open_stats.generations_skipped;
    } else {
      VDB_RETURN_IF_ERROR(LoadCatalog(path, &scratch));
    }
    for (int id = 0; id < scratch.video_count(); ++id) {
      CatalogEntry copy = *scratch.GetEntry(id).value();
      Result<int> restored = db->Restore(std::move(copy));
      if (!restored.ok()) {
        return restored.status();
      }
    }
  }
  snapshot.db = std::move(db);
  return snapshot;
}

Status Server::Start(std::vector<std::string> catalog_paths) {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  VDB_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadCatalogs(catalog_paths));
  VDB_ASSIGN_OR_RETURN(
      int listen_fd,
      ListenTcp(options_.host, options_.port, options_.backlog));
  Result<int> port = LocalPort(listen_fd);
  if (!port.ok()) {
    CloseFd(listen_fd);
    return port.status();
  }
  metrics_.SetStoreGeneration(loaded.store_generation);
  metrics_.OnGenerationsSkipped(loaded.generations_skipped);
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(loaded.db);
    catalog_paths_ = std::move(catalog_paths);
  }
  listen_fd_ = listen_fd;
  port_ = *port;
  // At least 2 workers: ThreadPool's 1-thread mode runs tasks inline, which
  // would make the acceptor serve the connection itself and never accept
  // (and thus never BUSY-reject) another one.
  pool_ = std::make_unique<ThreadPool>(std::max(2, options_.max_connections));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::Ok();
}

void Server::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    return;
  }
  // Wake the acceptor (accept fails once the listener is shut down) ...
  ShutdownFd(listen_fd_);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // ... then every connection: their blocked reads see EOF and the handler
  // loops exit after finishing the request they are on. Handlers close an
  // fd only after removing it from conns_ under the lock, so every fd
  // shut down here is still owned by its connection.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conns_) {
      ShutdownFd(fd);
    }
  }
  if (pool_) {
    pool_->Wait();
    pool_.reset();  // joins the workers
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

std::shared_ptr<const VideoDatabase> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_;
}

void Server::AcceptLoop() {
  for (;;) {
    Result<int> accepted = AcceptConnection(listen_fd_);
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) {
        break;
      }
      // Transient accept failure (EMFILE, ECONNABORTED, ...): back off a
      // beat instead of spinning.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    int fd = *accepted;
    if (stopping_.load(std::memory_order_acquire)) {
      CloseFd(fd);
      break;
    }
    ConfigureSocket(fd, options_.read_timeout_ms, options_.write_timeout_ms);
    if (metrics_.active_connections() >=
        static_cast<uint64_t>(options_.max_connections)) {
      metrics_.OnBusyRejected();
      Response busy = ErrorResponse(
          Verb::kError,
          Status::FailedPrecondition(StrFormat(
              "server busy: %d connections already open",
              options_.max_connections)));
      WriteAll(fd, EncodeResponse(busy));
      CloseFd(fd);
      continue;
    }
    metrics_.OnConnectionOpened();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.insert(fd);
    }
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      return Status::Ok();
    });
  }
}

void Server::HandleConnection(int fd) {
  for (;;) {
    Result<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      StatusCode code = frame.status().code();
      if (code == StatusCode::kCorruption ||
          code == StatusCode::kInvalidArgument) {
        // The byte stream is unsynchronised; tell the peer why, then drop.
        metrics_.OnBadFrame();
        WriteAll(fd, EncodeResponse(
                         ErrorResponse(Verb::kError, frame.status())));
      }
      // kNotFound is a clean close between frames; timeouts and torn
      // frames (kIoError) just drop the connection.
      break;
    }
    Result<Request> request = DecodeRequest(frame->header, frame->payload);
    if (!request.ok()) {
      // Framing was sound, only the payload was bad: report the error on
      // this request and keep the connection alive.
      metrics_.OnBadFrame();
      if (!WriteAll(fd, EncodeResponse(ErrorResponse(Verb::kError,
                                                     request.status())))
               .ok()) {
        break;
      }
      continue;
    }
    Stopwatch timer;
    Response response = Dispatch(*request);
    metrics_.OnRequest(request->verb, response.status.ok(),
                       timer.ElapsedSeconds() * 1e6);
    if (!WriteAll(fd, EncodeResponse(response)).ok()) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.erase(fd);
  }
  CloseFd(fd);
  metrics_.OnConnectionClosed();
}

Response Server::Dispatch(const Request& request) {
  switch (request.verb) {
    case Verb::kPing: {
      Response response;
      response.verb = Verb::kPing;
      response.ping_token = request.ping_token;
      return response;
    }
    case Verb::kStats:
      return HandleStats();
    case Verb::kQuery:
      return HandleQuery(request.query);
    case Verb::kTree:
      return HandleTree(request.tree);
    case Verb::kList:
      return HandleList();
    case Verb::kReload: {
      Response response;
      response.verb = Verb::kReload;
      response.status = Reload(request.reload_path, &response.reload);
      return response;
    }
    case Verb::kError:
      break;
  }
  return ErrorResponse(Verb::kError,
                       Status::InvalidArgument("unsupported request verb"));
}

Response Server::HandleQuery(const QueryRequest& request) const {
  Response response;
  response.verb = Verb::kQuery;
  if (request.top_k < 1 || request.top_k > kMaxTopK) {
    response.status = Status::InvalidArgument(
        StrFormat("top_k %d out of range [1, %d]", request.top_k, kMaxTopK));
    return response;
  }
  if (request.var_ba < 0 || request.var_oa < 0) {
    response.status =
        Status::InvalidArgument("variances must be non-negative");
    return response;
  }
  std::shared_ptr<const VideoDatabase> db = snapshot();
  VarianceQuery query;
  query.var_ba = request.var_ba;
  query.var_oa = request.var_oa;
  query.alpha = request.alpha;
  query.beta = request.beta;
  Result<std::vector<BrowsingSuggestion>> found =
      (request.genre_id >= 0 || request.form_id >= 0)
          ? db->SearchWithinClass(
                query, request.top_k,
                ClassFilter{request.genre_id, request.form_id})
          : db->Search(query, request.top_k);
  if (!found.ok()) {
    response.status = found.status();
    return response;
  }
  response.query.suggestions.reserve(found->size());
  for (const BrowsingSuggestion& s : *found) {
    SuggestionWire wire;
    wire.video_id = s.match.entry.video_id;
    wire.shot_index = s.match.entry.shot_index;
    wire.var_ba = s.match.entry.var_ba;
    wire.var_oa = s.match.entry.var_oa;
    wire.distance = s.match.distance;
    wire.video_name = s.video_name;
    wire.scene_node = s.scene_node;
    wire.scene_label = s.scene_label;
    wire.representative_frame = s.representative_frame;
    response.query.suggestions.push_back(std::move(wire));
  }
  return response;
}

Response Server::HandleTree(const TreeRequest& request) const {
  Response response;
  response.verb = Verb::kTree;
  std::shared_ptr<const VideoDatabase> db = snapshot();
  Result<const CatalogEntry*> entry = db->GetEntry(request.video_id);
  if (!entry.ok()) {
    response.status = entry.status();
    return response;
  }
  const SceneTree& tree = (*entry)->scene_tree;
  if (tree.node_count() == 0) {
    response.status = Status::NotFound(
        StrFormat("video %d has no scene tree", request.video_id));
    return response;
  }
  int start = request.node_id < 0 ? tree.root() : request.node_id;
  if (start < 0 || start >= tree.node_count()) {
    response.status = Status::InvalidArgument(
        StrFormat("node %d out of range [0, %d)", start, tree.node_count()));
    return response;
  }
  response.tree.root = start;
  response.tree.shot_count = tree.shot_count();
  // Depth-limited pre-order walk from `start`. Children ids below the
  // cut-off are still listed in their parent's row, so a shallow response
  // names real nodes a follow-up TREE request can descend into.
  struct PendingNode {
    int id;
    int depth;
  };
  std::vector<PendingNode> stack = {{start, 0}};
  while (!stack.empty()) {
    PendingNode top = stack.back();
    stack.pop_back();
    const SceneNode& node = tree.node(top.id);
    TreeNodeWire wire;
    wire.id = node.id;
    wire.parent = node.parent;
    wire.level = node.level;
    wire.shot_index = node.shot_index;
    wire.representative_frame = node.representative_frame;
    wire.label = node.Label();
    wire.children = node.children;
    response.tree.nodes.push_back(std::move(wire));
    if (request.max_depth < 0 || top.depth < request.max_depth) {
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        stack.push_back({*it, top.depth + 1});
      }
    }
  }
  return response;
}

Response Server::HandleList() const {
  Response response;
  response.verb = Verb::kList;
  std::shared_ptr<const VideoDatabase> db = snapshot();
  int count = db->video_count();
  response.list.videos.reserve(static_cast<size_t>(count));
  for (int id = 0; id < count; ++id) {
    const CatalogEntry* entry = db->GetEntry(id).value();
    VideoSummary summary;
    summary.video_id = entry->video_id;
    summary.name = entry->name;
    summary.frame_count = entry->frame_count;
    summary.fps = entry->fps;
    summary.shot_count = static_cast<int>(entry->shots.size());
    summary.node_count = entry->scene_tree.node_count();
    summary.genre_ids = entry->classification.genre_ids;
    summary.form_id = entry->classification.form_id;
    response.list.videos.push_back(std::move(summary));
  }
  return response;
}

Response Server::HandleStats() const {
  Response response;
  response.verb = Verb::kStats;
  response.stats = metrics_.Snapshot();
  std::shared_ptr<const VideoDatabase> db = snapshot();
  response.stats.videos = db->video_count();
  response.stats.indexed_shots = db->index().size();
  return response;
}

Status Server::Reload(const std::string& path, ReloadResponse* out) {
  // One reload at a time; queries are never blocked — they keep hitting
  // whatever db_ points at until the single pointer swap below.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    paths = path.empty() ? catalog_paths_
                         : std::vector<std::string>{path};
  }
  Result<LoadedSnapshot> fresh = LoadCatalogs(paths);
  if (!fresh.ok()) {
    // The failed load never touches db_: clients keep querying the current
    // snapshot, and the failure is visible in STATS.
    metrics_.OnReloadResult(false);
    return fresh.status();
  }
  metrics_.OnReloadResult(true);
  metrics_.OnGenerationsSkipped(fresh->generations_skipped);
  metrics_.SetStoreGeneration(fresh->store_generation);
  out->videos = fresh->db->video_count();
  out->indexed_shots = fresh->db->index().size();
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(fresh->db);
    catalog_paths_ = std::move(paths);
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace vdb
