#include "serve/server.h"

#include <utility>

#include "core/catalog_io.h"
#include "core/extractor.h"
#include "core/geometry.h"
#include "index/index_store.h"
#include "store/catalog_store.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace vdb {
namespace serve {
namespace {

// QUERY result sizes beyond this are a client bug, not a workload.
constexpr int kMaxTopK = 1 << 16;

// The frame index paired with a freshly loaded snapshot: the persisted,
// generation-matched FRAMEINDEX when the store has one, else a rebuild
// from the in-memory catalog (monolithic .vdbcat paths, multi-path
// merges, and stores published before the index layer existed all land
// here). Either way the snapshot ships with a non-null frozen index.
std::shared_ptr<const index::FrameIndex> IndexForSnapshot(
    const std::string& store_dir, uint64_t generation,
    const VideoDatabase& db, bool* from_store) {
  *from_store = false;
  if (!store_dir.empty()) {
    Result<index::FrameIndex> opened =
        index::OpenFrameIndex(store_dir, generation);
    if (opened.ok()) {
      *from_store = true;
      return std::make_shared<const index::FrameIndex>(std::move(*opened));
    }
  }
  return std::make_shared<const index::FrameIndex>(
      index::FrameIndex::Build(db));
}

}  // namespace

Server::Server(ServerOptions options)
    : frontend_(std::move(options),
                [this](const Request& request) { return Dispatch(request); },
                [](Verb verb) { return verb == Verb::kReload; }) {}

Server::~Server() { Stop(); }

Result<Server::LoadedSnapshot> Server::LoadCatalogs(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no catalog paths to load");
  }
  LoadedSnapshot snapshot;
  if (paths.size() == 1 && IsDirectory(paths[0])) {
    // The common store-backed deployment: serve the newest loadable
    // generation directly, without copying any entry.
    store::CatalogStore catalog_store(paths[0]);
    store::OpenStats open_stats;
    VDB_ASSIGN_OR_RETURN(std::unique_ptr<VideoDatabase> opened,
                         catalog_store.Open(&open_stats));
    snapshot.db = std::shared_ptr<const VideoDatabase>(std::move(opened));
    snapshot.store_generation = open_stats.generation;
    snapshot.generations_skipped = open_stats.generations_skipped;
    snapshot.frame_index =
        IndexForSnapshot(paths[0], open_stats.generation, *snapshot.db,
                         &snapshot.index_from_store);
    return snapshot;
  }
  auto db = std::make_shared<VideoDatabase>();
  if (paths.size() == 1) {
    VDB_RETURN_IF_ERROR(LoadCatalog(paths[0], db.get()));
    snapshot.db = std::move(db);
    snapshot.frame_index = IndexForSnapshot(
        "", 0, *snapshot.db, &snapshot.index_from_store);
    return snapshot;
  }
  // Several catalogs merge into one database: each loads into a scratch
  // database, then its entries are re-installed in path order, so video ids
  // are dense and deterministic across restarts.
  for (const std::string& path : paths) {
    VideoDatabase scratch;
    if (IsDirectory(path)) {
      store::OpenStats open_stats;
      VDB_RETURN_IF_ERROR(
          store::OpenDatabaseFromStore(path, &scratch, &open_stats));
      snapshot.store_generation = open_stats.generation;
      snapshot.generations_skipped += open_stats.generations_skipped;
    } else {
      VDB_RETURN_IF_ERROR(LoadCatalog(path, &scratch));
    }
    for (int id = 0; id < scratch.video_count(); ++id) {
      CatalogEntry copy = *scratch.GetEntry(id).value();
      Result<int> restored = db->Restore(std::move(copy));
      if (!restored.ok()) {
        return restored.status();
      }
    }
  }
  snapshot.db = std::move(db);
  // A merged multi-path database never matches any single store's
  // persisted index (video ids are re-assigned), so always rebuild.
  snapshot.frame_index = IndexForSnapshot(
      "", 0, *snapshot.db, &snapshot.index_from_store);
  return snapshot;
}

Status Server::Start(std::vector<std::string> catalog_paths) {
  VDB_ASSIGN_OR_RETURN(LoadedSnapshot loaded, LoadCatalogs(catalog_paths));
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(loaded.db);
    frame_index_ = std::move(loaded.frame_index);
    catalog_paths_ = std::move(catalog_paths);
  }
  frontend_.metrics().SetStoreGeneration(loaded.store_generation);
  frontend_.metrics().OnGenerationsSkipped(loaded.generations_skipped);
  return frontend_.Start();
}

void Server::Stop() { frontend_.Stop(); }

std::shared_ptr<const VideoDatabase> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_;
}

std::shared_ptr<const index::FrameIndex> Server::frame_index() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return frame_index_;
}

Response Server::Dispatch(const Request& request) {
  switch (request.verb) {
    case Verb::kPing: {
      Response response;
      response.verb = Verb::kPing;
      response.ping_token = request.ping_token;
      return response;
    }
    case Verb::kStats:
      return HandleStats();
    case Verb::kQuery:
      return HandleQuery(request.query);
    case Verb::kTree:
      return HandleTree(request.tree);
    case Verb::kList:
      return HandleList();
    case Verb::kQueryFrame:
      return HandleQueryFrame(request.query_frame);
    case Verb::kReload: {
      Response response;
      response.verb = Verb::kReload;
      response.status = Reload(request.reload_path, &response.reload);
      return response;
    }
    case Verb::kError:
      break;
  }
  return ErrorResponse(Verb::kError,
                       Status::InvalidArgument("unsupported request verb"));
}

Response Server::HandleQuery(const QueryRequest& request) const {
  Response response;
  response.verb = Verb::kQuery;
  if (request.top_k < 1 || request.top_k > kMaxTopK) {
    response.status = Status::InvalidArgument(
        StrFormat("top_k %d out of range [1, %d]", request.top_k, kMaxTopK));
    return response;
  }
  if (request.var_ba < 0 || request.var_oa < 0) {
    response.status =
        Status::InvalidArgument("variances must be non-negative");
    return response;
  }
  std::shared_ptr<const VideoDatabase> db = snapshot();
  VarianceQuery query;
  query.var_ba = request.var_ba;
  query.var_oa = request.var_oa;
  query.alpha = request.alpha;
  query.beta = request.beta;
  bool filtered = request.genre_id >= 0 || request.form_id >= 0;
  ClassFilter filter{request.genre_id, request.form_id};
  int64_t in_band = 0;
  int64_t eligible = 0;
  Result<std::vector<BrowsingSuggestion>> found =
      [&]() -> Result<std::vector<BrowsingSuggestion>> {
    if (request.exact_band) {
      // One fixed-band probe for the cluster router's distributed widening
      // loop: no tolerance escalation here — the router escalates globally
      // and needs the per-shard in-band/eligible counts to decide when the
      // union of shard bands is provably complete.
      return db->SearchBanded(query, request.top_k,
                              filtered ? &filter : nullptr, &in_band,
                              &eligible);
    }
    if (filtered) {
      return db->SearchWithinClass(query, request.top_k, filter);
    }
    return db->Search(query, request.top_k);
  }();
  response.query.in_band = in_band;
  response.query.eligible = eligible;
  if (!found.ok()) {
    response.status = found.status();
    return response;
  }
  response.query.suggestions.reserve(found->size());
  for (const BrowsingSuggestion& s : *found) {
    SuggestionWire wire;
    wire.video_id = s.match.entry.video_id;
    wire.shot_index = s.match.entry.shot_index;
    wire.var_ba = s.match.entry.var_ba;
    wire.var_oa = s.match.entry.var_oa;
    wire.distance = s.match.distance;
    wire.video_name = s.video_name;
    wire.scene_node = s.scene_node;
    wire.scene_label = s.scene_label;
    wire.representative_frame = s.representative_frame;
    response.query.suggestions.push_back(std::move(wire));
  }
  return response;
}

Response Server::HandleTree(const TreeRequest& request) const {
  Response response;
  response.verb = Verb::kTree;
  std::shared_ptr<const VideoDatabase> db = snapshot();
  Result<const CatalogEntry*> entry = db->GetEntry(request.video_id);
  if (!entry.ok()) {
    response.status = entry.status();
    return response;
  }
  const SceneTree& tree = (*entry)->scene_tree;
  if (tree.node_count() == 0) {
    response.status = Status::NotFound(
        StrFormat("video %d has no scene tree", request.video_id));
    return response;
  }
  int start = request.node_id < 0 ? tree.root() : request.node_id;
  if (start < 0 || start >= tree.node_count()) {
    response.status = Status::InvalidArgument(
        StrFormat("node %d out of range [0, %d)", start, tree.node_count()));
    return response;
  }
  response.tree.root = start;
  response.tree.shot_count = tree.shot_count();
  // Depth-limited pre-order walk from `start`. Children ids below the
  // cut-off are still listed in their parent's row, so a shallow response
  // names real nodes a follow-up TREE request can descend into.
  struct PendingNode {
    int id;
    int depth;
  };
  std::vector<PendingNode> stack = {{start, 0}};
  while (!stack.empty()) {
    PendingNode top = stack.back();
    stack.pop_back();
    const SceneNode& node = tree.node(top.id);
    TreeNodeWire wire;
    wire.id = node.id;
    wire.parent = node.parent;
    wire.level = node.level;
    wire.shot_index = node.shot_index;
    wire.representative_frame = node.representative_frame;
    wire.label = node.Label();
    wire.children = node.children;
    response.tree.nodes.push_back(std::move(wire));
    if (request.max_depth < 0 || top.depth < request.max_depth) {
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        stack.push_back({*it, top.depth + 1});
      }
    }
  }
  return response;
}

Response Server::HandleList() const {
  Response response;
  response.verb = Verb::kList;
  std::shared_ptr<const VideoDatabase> db = snapshot();
  int count = db->video_count();
  response.list.videos.reserve(static_cast<size_t>(count));
  for (int id = 0; id < count; ++id) {
    const CatalogEntry* entry = db->GetEntry(id).value();
    VideoSummary summary;
    summary.video_id = entry->video_id;
    summary.name = entry->name;
    summary.frame_count = entry->frame_count;
    summary.fps = entry->fps;
    summary.shot_count = static_cast<int>(entry->shots.size());
    summary.node_count = entry->scene_tree.node_count();
    summary.genre_ids = entry->classification.genre_ids;
    summary.form_id = entry->classification.form_id;
    response.list.videos.push_back(std::move(summary));
  }
  return response;
}

Response Server::HandleStats() const {
  Response response;
  response.verb = Verb::kStats;
  response.stats = frontend_.metrics().Snapshot();
  std::shared_ptr<const VideoDatabase> db = snapshot();
  response.stats.videos = db->video_count();
  response.stats.indexed_shots = db->index().size();
  response.stats.shard_id = frontend_.options().shard_id;
  response.stats.shard_count = frontend_.options().shard_count;
  return response;
}

Response Server::HandleQueryFrame(const QueryFrameRequest& request) const {
  Response response;
  response.verb = Verb::kQueryFrame;
  if (request.top_k < 1 || request.top_k > kMaxTopK) {
    response.status = Status::InvalidArgument(
        StrFormat("top_k %d out of range [1, %d]", request.top_k, kMaxTopK));
    return response;
  }
  if (request.has_signature() == request.has_frame()) {
    response.status = Status::InvalidArgument(
        "QUERYFRAME needs exactly one of a signature or a raw frame");
    return response;
  }
  // One consistent pair: both pointers come from the same locked read, so
  // a concurrent RELOAD can never pair an old catalog with a new index.
  std::shared_ptr<const VideoDatabase> db;
  std::shared_ptr<const index::FrameIndex> frame_index;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db = db_;
    frame_index = frame_index_;
  }
  Signature signature;
  if (request.has_signature()) {
    size_t pixels = request.signature_rgb.size() / 3;
    signature.resize(pixels);
    for (size_t i = 0; i < pixels; ++i) {
      signature[i].r = static_cast<uint8_t>(request.signature_rgb[3 * i]);
      signature[i].g = static_cast<uint8_t>(request.signature_rgb[3 * i + 1]);
      signature[i].b = static_cast<uint8_t>(request.signature_rgb[3 * i + 2]);
    }
  } else {
    // ::vdb::Frame — serve::Frame is the wire frame, an unrelated type.
    ::vdb::Frame frame(request.width, request.height);
    const char* src = request.frame_rgb.data();
    for (size_t i = 0; i < frame.pixel_count(); ++i) {
      frame.pixels()[i].r = static_cast<uint8_t>(src[3 * i]);
      frame.pixels()[i].g = static_cast<uint8_t>(src[3 * i + 1]);
      frame.pixels()[i].b = static_cast<uint8_t>(src[3 * i + 2]);
    }
    Result<AreaGeometry> geometry =
        ComputeAreaGeometry(request.width, request.height);
    if (!geometry.ok()) {
      response.status = geometry.status();
      return response;
    }
    Result<FrameSignature> computed = ComputeFrameSignature(frame, *geometry);
    if (!computed.ok()) {
      response.status = computed.status();
      return response;
    }
    signature = std::move(computed->signature_ba);
  }
  index::FrameQueryStats stats;
  std::vector<index::FrameHit> hits =
      frame_index->QuerySignature(signature, request.top_k, &stats);
  response.query_frame.query_tokens = stats.query_tokens;
  response.query_frame.candidates = stats.candidates;
  response.query_frame.probed = stats.probed;
  response.query_frame.hits.reserve(hits.size());
  for (const index::FrameHit& hit : hits) {
    FrameHitWire wire;
    wire.video_id = hit.video_id;
    wire.shot_index = hit.shot_index;
    wire.score = hit.score;
    Result<const CatalogEntry*> entry = db->GetEntry(hit.video_id);
    if (entry.ok()) {
      wire.video_name = (*entry)->name;
    }
    response.query_frame.hits.push_back(std::move(wire));
  }
  return response;
}

Status Server::Reload(const std::string& path, ReloadResponse* out) {
  // One reload at a time; queries are never blocked — they keep hitting
  // whatever db_ points at until the single pointer swap below.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    paths = path.empty() ? catalog_paths_
                         : std::vector<std::string>{path};
  }
  Result<LoadedSnapshot> fresh = LoadCatalogs(paths);
  if (!fresh.ok()) {
    // The failed load never touches db_: clients keep querying the current
    // snapshot, and the failure is visible in STATS.
    frontend_.metrics().OnReloadResult(false);
    return fresh.status();
  }
  frontend_.metrics().OnReloadResult(true);
  frontend_.metrics().OnGenerationsSkipped(fresh->generations_skipped);
  frontend_.metrics().SetStoreGeneration(fresh->store_generation);
  out->videos = fresh->db->video_count();
  out->indexed_shots = fresh->db->index().size();
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(fresh->db);
    frame_index_ = std::move(fresh->frame_index);
    catalog_paths_ = std::move(paths);
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace vdb
