#ifndef VDB_SERVE_SERVER_H_
#define VDB_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/video_database.h"
#include "serve/metrics.h"
#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace serve {

class EventWorker;

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read the real one back with port().
  int port = 0;
  int backlog = 128;

  // Concurrent connection limit. A connection beyond the limit is answered
  // with a BUSY error frame and closed instead of silently queueing.
  // Admission is an atomic gauge check at accept time, so several event
  // workers accepting concurrently can never overshoot the limit.
  int max_connections = 32;

  // Per-connection deadlines; <= 0 disables. The read timeout bounds both
  // how long an idle persistent connection may sit between requests and how
  // long a started frame may take to finish arriving (the slow-loris
  // bound). The write timeout bounds how long buffered responses may sit
  // unsendable because the peer is not reading (write backpressure shed).
  int read_timeout_ms = 60'000;
  int write_timeout_ms = 10'000;

  // Event-loop worker threads; each runs its own epoll instance and owns
  // the connections it accepts (the listening socket is shared with
  // EPOLLEXCLUSIVE). <= 0 picks a small automatic value from the hardware
  // concurrency. The per-verb metrics histograms are sharded one per
  // worker and merged on STATS.
  int event_workers = 0;

  // Pause reading a connection once this many encoded-response bytes are
  // buffered unsent (pipelining backpressure); reading resumes once the
  // buffer drains below half of this. Combined with the write timeout this
  // bounds the memory a never-reading client can pin.
  size_t max_buffered_response_bytes = 8u << 20;
};

// The catalog query service: loads `.vdbcat` catalogs into an in-memory
// VideoDatabase and serves PING/STATS/QUERY/TREE/LIST/RELOAD over the wire
// protocol (serve/wire.h) on a TCP socket.
//
// A catalog path that is a *directory* is opened as a segmented store
// (store/catalog_store.h): the newest fully-verifying generation is served,
// falling back generation by generation past corruption; each skipped
// generation counts toward the reload_failures metric and the served
// generation is surfaced by STATS. RELOAD against a store directory picks
// up whatever generation a concurrent `vdbtool store-save` published.
//
// Threading: `event_workers` nonblocking event-loop threads, each with its
// own edge-triggered epoll instance. A connection lives entirely on the
// worker that accepted it: the worker reads whatever bytes arrived, peels
// complete frames off with an incremental FrameParser, dispatches each
// request against the current snapshot, and flushes the encoded responses
// with vectored writes. Requests on one connection may be *pipelined* —
// many frames in flight before the first response is read — and responses
// are always written in request order. RELOAD (the one verb that does disk
// I/O) runs on a dedicated executor thread so it never stalls an event
// loop; the connection's later requests wait their turn behind it, which
// keeps per-connection semantics exactly sequential.
//
// Snapshots: the database sits behind a shared_ptr that request handlers
// copy once per request. RELOAD builds a fresh database from disk off to
// the side and swaps the pointer in atomically — in-flight queries keep
// reading the old snapshot, which is freed when its last request finishes.
// There is never a moment when a query can observe a half-loaded catalog.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());

  // Stops the server if it is still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads every catalog into one database (ids are assigned in path order),
  // binds the listening socket and starts the event workers.
  // `catalog_paths` becomes the RELOAD default. Fails without side effects
  // if any catalog is unreadable or the address cannot be bound.
  Status Start(std::vector<std::string> catalog_paths);

  // Signal -> drain -> exit: stops accepting, finishes any in-flight
  // RELOAD, gives every connection one final flush of already-queued
  // responses, then closes them and joins the workers. Idempotent; Start
  // may not be called again afterwards.
  void Stop();

  // The port actually bound (meaningful after a successful Start).
  int port() const { return port_; }

  // The number of event-loop workers actually running (resolved from
  // ServerOptions::event_workers at construction).
  int event_workers() const { return num_workers_; }

  // The catalog snapshot requests are currently served from.
  std::shared_ptr<const VideoDatabase> snapshot() const;

  const ServerMetrics& metrics() const { return metrics_; }

  // Request dispatch against the current snapshot, exposed for tests: this
  // is exactly what an event worker runs between decode and encode (except
  // that the workers route RELOAD through the reload executor instead of
  // running it inline).
  Response Dispatch(const Request& request);

 private:
  friend class EventWorker;

  struct LoadedSnapshot {
    std::shared_ptr<const VideoDatabase> db;
    // Of the newest store directory among the paths; 0 when every path is
    // a monolithic catalog file.
    uint64_t store_generation = 0;
    // Corrupt newer store generations skipped while loading.
    int generations_skipped = 0;
  };

  // One queued asynchronous RELOAD: worker `worker` owns connection
  // `conn_id`, whose response slot `seq` is waiting for the result.
  struct ReloadJob {
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string path;
  };

  // Loads `paths` (catalog files and/or store directories) into one fresh
  // database.
  static Result<LoadedSnapshot> LoadCatalogs(
      const std::vector<std::string>& paths);

  // Serialised catalog reload; on success swaps the snapshot and makes
  // `path` (when non-empty) the new RELOAD default.
  Status Reload(const std::string& path, ReloadResponse* out);

  // Hands a RELOAD to the executor thread; the response is posted back to
  // the owning worker when the load finishes.
  void EnqueueReload(ReloadJob job);
  void ReloadLoop();

  Response HandleQuery(const QueryRequest& request) const;
  Response HandleTree(const TreeRequest& request) const;
  Response HandleList() const;
  Response HandleStats() const;

  ServerOptions options_;
  int num_workers_ = 1;
  int listen_fd_ = -1;
  int port_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{1};

  std::vector<std::unique_ptr<EventWorker>> workers_;

  std::thread reload_thread_;
  std::mutex reload_jobs_mu_;
  std::condition_variable reload_jobs_cv_;
  std::deque<ReloadJob> reload_jobs_;
  bool reload_executor_stop_ = false;

  mutable std::mutex db_mu_;  // guards db_ and catalog_paths_
  std::shared_ptr<const VideoDatabase> db_;
  std::vector<std::string> catalog_paths_;
  std::mutex reload_mu_;  // serialises RELOADs (not held during the swap)

  ServerMetrics metrics_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_SERVER_H_
