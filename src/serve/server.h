#ifndef VDB_SERVE_SERVER_H_
#define VDB_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/video_database.h"
#include "serve/metrics.h"
#include "serve/wire.h"
#include "util/parallel.h"
#include "util/result.h"

namespace vdb {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read the real one back with port().
  int port = 0;
  int backlog = 128;

  // Concurrent connection limit. The handler pool has exactly this many
  // threads (the serving model is blocking thread-per-connection), so a
  // connection beyond the limit is answered with a BUSY error frame and
  // closed instead of silently queueing behind a busy worker.
  int max_connections = 32;

  // Per-connection socket timeouts; <= 0 disables. The read timeout bounds
  // how long an idle persistent connection may sit between requests.
  int read_timeout_ms = 60'000;
  int write_timeout_ms = 10'000;
};

// The catalog query service: loads `.vdbcat` catalogs into an in-memory
// VideoDatabase and serves PING/STATS/QUERY/TREE/LIST/RELOAD over the wire
// protocol (serve/wire.h) on a TCP socket.
//
// A catalog path that is a *directory* is opened as a segmented store
// (store/catalog_store.h): the newest fully-verifying generation is served,
// falling back generation by generation past corruption; each skipped
// generation counts toward the reload_failures metric and the served
// generation is surfaced by STATS. RELOAD against a store directory picks
// up whatever generation a concurrent `vdbtool store-save` published.
//
// Threading: one acceptor thread plus a ThreadPool of max_connections
// handler threads; each live connection occupies one handler for its
// lifetime and runs a blocking read-dispatch-write loop.
//
// Snapshots: the database sits behind a shared_ptr that request handlers
// copy once per request. RELOAD builds a fresh database from disk off to
// the side and swaps the pointer in atomically — in-flight queries keep
// reading the old snapshot, which is freed when its last request finishes.
// There is never a moment when a query can observe a half-loaded catalog.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());

  // Stops the server if it is still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads every catalog into one database (ids are assigned in path order),
  // binds the listening socket and starts the acceptor. `catalog_paths`
  // becomes the RELOAD default. Fails without side effects if any catalog
  // is unreadable or the address cannot be bound.
  Status Start(std::vector<std::string> catalog_paths);

  // Signal -> drain -> exit: stops accepting, wakes every connection (their
  // in-flight request still gets its response written), waits for handlers
  // to finish, joins the acceptor. Idempotent; Start may not be called
  // again afterwards.
  void Stop();

  // The port actually bound (meaningful after a successful Start).
  int port() const { return port_; }

  // The catalog snapshot requests are currently served from.
  std::shared_ptr<const VideoDatabase> snapshot() const;

  const ServerMetrics& metrics() const { return metrics_; }

  // Request dispatch against the current snapshot, exposed for tests: this
  // is exactly what a connection handler runs between decode and encode.
  Response Dispatch(const Request& request);

 private:
  struct LoadedSnapshot {
    std::shared_ptr<const VideoDatabase> db;
    // Of the newest store directory among the paths; 0 when every path is
    // a monolithic catalog file.
    uint64_t store_generation = 0;
    // Corrupt newer store generations skipped while loading.
    int generations_skipped = 0;
  };

  // Loads `paths` (catalog files and/or store directories) into one fresh
  // database.
  static Result<LoadedSnapshot> LoadCatalogs(
      const std::vector<std::string>& paths);

  void AcceptLoop();
  void HandleConnection(int fd);
  // Serialised catalog reload; on success swaps the snapshot and makes
  // `path` (when non-empty) the new RELOAD default.
  Status Reload(const std::string& path, ReloadResponse* out);

  Response HandleQuery(const QueryRequest& request) const;
  Response HandleTree(const TreeRequest& request) const;
  Response HandleList() const;
  Response HandleStats() const;

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex db_mu_;  // guards db_ and catalog_paths_
  std::shared_ptr<const VideoDatabase> db_;
  std::vector<std::string> catalog_paths_;
  std::mutex reload_mu_;  // serialises RELOADs (not held during the swap)

  std::mutex conn_mu_;  // guards conns_
  std::unordered_set<int> conns_;

  ServerMetrics metrics_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_SERVER_H_
