#ifndef VDB_SERVE_SERVER_H_
#define VDB_SERVE_SERVER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/video_database.h"
#include "index/frame_index.h"
#include "serve/frontend.h"
#include "serve/metrics.h"
#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace serve {

// The catalog query service: loads `.vdbcat` catalogs into an in-memory
// VideoDatabase and serves PING/STATS/QUERY/TREE/LIST/RELOAD over the wire
// protocol (serve/wire.h) on a TCP socket.
//
// A catalog path that is a *directory* is opened as a segmented store
// (store/catalog_store.h): the newest fully-verifying generation is served,
// falling back generation by generation past corruption; each skipped
// generation counts toward the reload_failures metric and the served
// generation is surfaced by STATS. RELOAD against a store directory picks
// up whatever generation a concurrent `vdbtool store-save` published.
//
// Networking is a FrontEnd (serve/frontend.h): edge-triggered epoll event
// workers with pipelining, backpressure and deadlines. The Server plugs in
// its dispatch and offloads exactly one verb — RELOAD, the one that does
// disk I/O — to the front end's executor so it never stalls an event loop;
// the connection's later requests wait their turn behind it, which keeps
// per-connection semantics exactly sequential.
//
// Snapshots: the database sits behind a shared_ptr that request handlers
// copy once per request. RELOAD builds a fresh database from disk off to
// the side and swaps the pointer in atomically — in-flight queries keep
// reading the old snapshot, which is freed when its last request finishes.
// There is never a moment when a query can observe a half-loaded catalog.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions());

  // Stops the server if it is still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads every catalog into one database (ids are assigned in path order),
  // binds the listening socket and starts the event workers.
  // `catalog_paths` becomes the RELOAD default. Fails without side effects
  // if any catalog is unreadable or the address cannot be bound.
  Status Start(std::vector<std::string> catalog_paths);

  // Signal -> drain -> exit: stops accepting, finishes any in-flight
  // RELOAD, gives every connection one final flush of already-queued
  // responses, then closes them and joins the workers. Idempotent; Start
  // may not be called again afterwards.
  void Stop();

  // The port actually bound (meaningful after a successful Start).
  int port() const { return frontend_.port(); }

  // The number of event-loop workers actually running (resolved from
  // ServerOptions::event_workers at construction).
  int event_workers() const { return frontend_.event_workers(); }

  // The catalog snapshot requests are currently served from.
  std::shared_ptr<const VideoDatabase> snapshot() const;

  // The frame-index snapshot QUERYFRAME is currently served from; swapped
  // atomically together with the catalog snapshot on RELOAD.
  std::shared_ptr<const index::FrameIndex> frame_index() const;

  const ServerMetrics& metrics() const { return frontend_.metrics(); }

  // Request dispatch against the current snapshot, exposed for tests: this
  // is exactly what an event worker runs between decode and encode (except
  // that the workers route RELOAD through the offload executor instead of
  // running it inline).
  Response Dispatch(const Request& request);

  // Loads `paths` (catalog files and/or store directories) into one fresh
  // database, assigning dense video ids in path order. This is the merge
  // the cluster property tests compare a sharded router against.
  struct LoadedSnapshot {
    std::shared_ptr<const VideoDatabase> db;
    // The frame index paired with db: the persisted FRAMEINDEX-<generation>
    // of the store when one exists (generation coupling — it provably
    // matches the opened catalog generation), else rebuilt in memory from
    // the loaded catalog. Never null on success.
    std::shared_ptr<const index::FrameIndex> frame_index;
    // True when frame_index came from the store rather than a rebuild.
    bool index_from_store = false;
    // Of the newest store directory among the paths; 0 when every path is
    // a monolithic catalog file.
    uint64_t store_generation = 0;
    // Corrupt newer store generations skipped while loading.
    int generations_skipped = 0;
  };
  static Result<LoadedSnapshot> LoadCatalogs(
      const std::vector<std::string>& paths);

 private:
  // Serialised catalog reload; on success swaps the snapshot and makes
  // `path` (when non-empty) the new RELOAD default.
  Status Reload(const std::string& path, ReloadResponse* out);

  Response HandleQuery(const QueryRequest& request) const;
  Response HandleTree(const TreeRequest& request) const;
  Response HandleList() const;
  Response HandleStats() const;
  Response HandleQueryFrame(const QueryFrameRequest& request) const;

  mutable std::mutex db_mu_;  // guards db_, frame_index_, catalog_paths_
  std::shared_ptr<const VideoDatabase> db_;
  std::shared_ptr<const index::FrameIndex> frame_index_;
  std::vector<std::string> catalog_paths_;
  std::mutex reload_mu_;  // serialises RELOADs (not held during the swap)

  FrontEnd frontend_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_SERVER_H_
