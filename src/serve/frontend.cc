#include "serve/frontend.h"

#include <sys/epoll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "serve/net.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace vdb {
namespace serve {
namespace {

// Event-loop shape: how many epoll events one wait may return, how many
// response frames one writev may batch, and the socket read chunk.
constexpr int kMaxEpollEvents = 64;
constexpr int kMaxFlushIovecs = 64;
constexpr size_t kReadChunk = 64u << 10;

// epoll user-data tags for the two non-connection fds; connection events
// carry the Conn pointer, which can never equal these small integers.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

using EventClock = std::chrono::steady_clock;
using TimePoint = EventClock::time_point;

double ElapsedMs(TimePoint since, TimePoint now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

int ResolveWorkers(int requested) {
  if (requested > 0) {
    return std::min(requested, 64);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 1) hw = 1;
  return static_cast<int>(std::min(hw, 4u));
}

}  // namespace

Response ErrorResponse(Verb verb, Status status) {
  Response response;
  response.verb = verb;
  response.status = std::move(status);
  return response;
}

// ---------------------------------------------------------------------------
// EventWorker: one edge-triggered epoll loop owning the connections it
// accepted. All connection state is confined to the worker thread; the only
// cross-thread traffic is the offload-completion queue (mutex + eventfd).

class EventWorker {
 public:
  EventWorker(FrontEnd* frontend, int index)
      : frontend_(frontend), index_(index), read_buf_(kReadChunk) {}

  ~EventWorker() {
    CloseFd(epoll_fd_);
    CloseFd(wake_fd_);
  }

  EventWorker(const EventWorker&) = delete;
  EventWorker& operator=(const EventWorker&) = delete;

  // Creates the epoll instance and wakeup eventfd and registers the shared
  // listening socket (EPOLLEXCLUSIVE: one worker is woken per pending
  // accept burst, not all of them).
  Status Init(int listen_fd) {
    listen_fd_ = listen_fd;
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IoError(
          StrFormat("epoll_create1: %s", std::strerror(errno)));
    }
    VDB_ASSIGN_OR_RETURN(wake_fd_, CreateEventFd());
    epoll_event wake{};
    wake.events = EPOLLIN;  // level-triggered; drained explicitly
    wake.data.u64 = kWakeTag;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake) != 0) {
      return Status::IoError(
          StrFormat("epoll_ctl wake fd: %s", std::strerror(errno)));
    }
    epoll_event listen{};
    listen.events = EPOLLIN | EPOLLEXCLUSIVE;
    listen.data.u64 = kListenTag;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen) != 0) {
      return Status::IoError(
          StrFormat("epoll_ctl listen fd: %s", std::strerror(errno)));
    }
    return Status::Ok();
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    SignalEventFd(wake_fd_);
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // Called by the offload executor (or EnqueueOffload's stopping fallback)
  // when connection `conn_id`'s response slot `seq` has its bytes.
  void PostOffloadDone(uint64_t conn_id, uint64_t seq, std::string bytes) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back({conn_id, seq, std::move(bytes)});
    }
    SignalEventFd(wake_fd_);
  }

 private:
  // One response frame, in request order. An offloaded request's slot sits
  // unready until the executor posts its bytes; flushing stops at the first
  // unready slot, which is what keeps pipelined responses in request order.
  struct Slot {
    bool ready = false;
    std::string bytes;
  };

  // One parsed unit of input, in arrival order. kBadPayload is a sound
  // frame whose payload failed to decode (error response, connection lives
  // on); kFatal is an unsynchronised byte stream (error response, then
  // close) — the same taxonomy the blocking server used.
  struct PendingItem {
    enum Kind { kRequest, kBadPayload, kFatal };
    Kind kind = kRequest;
    Request request;
    Status error;
  };

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameParser parser;
    std::deque<PendingItem> input;  // parsed, not yet dispatched
    std::deque<Slot> slots;         // responses, in request order
    uint64_t base_seq = 0;          // seq of slots.front()
    size_t head_written = 0;        // bytes of slots.front() already sent
    size_t unsent_bytes = 0;        // ready-but-unsent response bytes
    bool awaiting_offload = false;  // an offloaded request owns the turn
    bool close_after_flush = false;
    bool input_broken = false;      // fatal frame error: stop reading
    bool saw_eof = false;
    bool paused = false;            // write backpressure: not reading
    bool want_write = false;        // writev hit EAGAIN with bytes pending
    bool dead = false;
    bool has_partial = false;       // an incomplete frame is buffered
    TimePoint last_activity;
    TimePoint partial_since;
    TimePoint write_blocked_since;
  };

  struct OffloadDone {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string bytes;
  };

  void Run() {
    epoll_event events[kMaxEpollEvents];
    while (!stop_.load(std::memory_order_acquire)) {
      int timeout = NextTimeoutMs(EventClock::now());
      int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // fatal epoll failure; nothing sensible left to do
      }
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kListenTag) {
          AcceptAll();
          continue;
        }
        if (tag == kWakeTag) {
          DrainEventFd(wake_fd_);
          continue;
        }
        Conn* c = static_cast<Conn*>(events[i].data.ptr);
        if (c->dead) {
          continue;
        }
        if (events[i].events & EPOLLERR) {
          CloseConn(c);
          continue;
        }
        ServiceConn(c);
      }
      HandleCompletions();
      CheckDeadlines(EventClock::now());
      ReapDead();
    }
    // Drain on exit: deliver any finished offloaded request, give every
    // connection one final nonblocking flush of already-queued responses,
    // then close.
    HandleCompletions();
    for (auto& entry : conns_) {
      Conn* c = entry.second.get();
      if (c->dead) {
        continue;
      }
      Flush(c);
      if (!c->dead) {
        ShutdownFd(c->fd);
        CloseConn(c);
      }
    }
    conns_.clear();
    dead_count_ = 0;
  }

  void AcceptAll() {
    for (;;) {
      IoOutcome accepted = AcceptSome(listen_fd_);
      if (accepted.kind != IoOutcome::kProgress) {
        return;  // backlog drained, or a transient failure: next edge retries
      }
      int fd = static_cast<int>(accepted.bytes);
      if (frontend_->stopping_.load(std::memory_order_acquire)) {
        CloseFd(fd);
        return;
      }
      SetNonBlocking(fd);
      ConfigureSocket(fd, 0, 0);  // TCP_NODELAY; deadlines are loop-managed
      if (!frontend_->metrics_.TryOpenConnection(
              static_cast<uint64_t>(frontend_->options_.max_connections))) {
        frontend_->metrics_.OnBusyRejected();
        std::string busy = EncodeResponse(ErrorResponse(
            Verb::kError,
            Status::FailedPrecondition(StrFormat(
                "server busy: %d connections already open",
                frontend_->options_.max_connections))));
        iovec iov{const_cast<char*>(busy.data()), busy.size()};
        WritevSome(fd, &iov, 1);  // best effort; peer may just see the close
        CloseFd(fd);
        continue;
      }
      auto owned = std::make_unique<Conn>();
      Conn* c = owned.get();
      c->fd = fd;
      c->id =
          frontend_->next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      c->last_activity = EventClock::now();
      conns_.emplace(c->id, std::move(owned));
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.ptr = c;
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        CloseConn(c);
      }
    }
  }

  // The per-connection engine: pump input (read → parse → dispatch), flush
  // responses, and loop once more whenever flushing released backpressure.
  void ServiceConn(Conn* c) {
    for (;;) {
      PumpInput(c);
      if (c->dead) {
        return;
      }
      Flush(c);
      if (c->dead) {
        return;
      }
      if (c->paused &&
          c->unsent_bytes <=
              frontend_->options_.max_buffered_response_bytes / 2) {
        c->paused = false;  // drained below low water: read again
        continue;
      }
      break;
    }
    if (c->close_after_flush && c->slots.empty()) {
      CloseConn(c);
    }
  }

  // Reads until EAGAIN/EOF, feeding the parser and dispatching after every
  // chunk so output backpressure can pause the reads mid-burst.
  void PumpInput(Conn* c) {
    while (!c->paused && !c->input_broken && !c->saw_eof &&
           !c->close_after_flush && !c->dead) {
      IoOutcome r = ReadSome(c->fd, read_buf_.data(), read_buf_.size());
      if (r.kind == IoOutcome::kProgress) {
        c->last_activity = EventClock::now();
        c->parser.Feed(std::string_view(read_buf_.data(), r.bytes));
        ParseAndProcess(c);
        continue;
      }
      if (r.kind == IoOutcome::kWouldBlock) {
        break;
      }
      if (r.kind == IoOutcome::kEof) {
        c->saw_eof = true;
        break;
      }
      CloseConn(c);  // hard error (reset): nothing to flush to this peer
      return;
    }
    // Leftovers: a resumed (unpaused) connection or a completed offload may
    // have parsed-but-undispatched input with no new bytes arriving.
    ParseAndProcess(c);
  }

  void ParseAndProcess(Conn* c) {
    if (!c->input_broken) {
      for (;;) {
        Frame frame;
        Status error;
        FrameParser::Next next = c->parser.TryNext(&frame, &error);
        if (next == FrameParser::Next::kNeedMore) {
          break;
        }
        if (next == FrameParser::Next::kError) {
          PendingItem item;
          item.kind = PendingItem::kFatal;
          item.error = std::move(error);
          c->input.push_back(std::move(item));
          c->input_broken = true;
          break;
        }
        PendingItem item;
        Result<Request> request = DecodeRequest(frame.header, frame.payload);
        if (request.ok()) {
          item.kind = PendingItem::kRequest;
          item.request = std::move(*request);
        } else {
          item.kind = PendingItem::kBadPayload;
          item.error = request.status();
        }
        c->input.push_back(std::move(item));
      }
    }
    // The slow-loris clock: an incomplete frame must finish arriving within
    // the read timeout, counted from its first byte (not reset per byte).
    if (c->parser.mid_frame()) {
      if (!c->has_partial) {
        c->has_partial = true;
        c->partial_since = EventClock::now();
      }
    } else {
      c->has_partial = false;
    }
    ProcessInput(c);
  }

  void ProcessInput(Conn* c) {
    while (!c->awaiting_offload && !c->close_after_flush &&
           !c->input.empty()) {
      PendingItem item = std::move(c->input.front());
      c->input.pop_front();
      switch (item.kind) {
        case PendingItem::kRequest: {
          if (frontend_->offload_ && frontend_->offload_(item.request.verb)) {
            // This verb's dispatch may block (disk, backend sockets): run
            // it on the executor so this event loop keeps serving other
            // connections. The unready slot holds this connection's
            // response order; ProcessInput stops until the completion
            // arrives, so later pipelined requests observe its effects
            // exactly as they would sequentially.
            uint64_t seq = c->base_seq + c->slots.size();
            c->slots.emplace_back();
            c->awaiting_offload = true;
            frontend_->EnqueueOffload(
                {index_, c->id, seq, std::move(item.request)});
            break;
          }
          Stopwatch timer;
          Response response = frontend_->dispatch_(item.request);
          frontend_->metrics_.OnRequest(item.request.verb,
                                        response.status.ok(),
                                        timer.ElapsedSeconds() * 1e6,
                                        index_);
          PushReady(c, EncodeResponse(response));
          break;
        }
        case PendingItem::kBadPayload:
          // Framing was sound, only the payload was bad: report the error
          // on this request and keep the connection alive.
          frontend_->metrics_.OnBadFrame();
          PushReady(c, EncodeResponse(
                           ErrorResponse(Verb::kError, item.error)));
          break;
        case PendingItem::kFatal:
          // The byte stream is unsynchronised; tell the peer why, then
          // close once every earlier response has been delivered.
          frontend_->metrics_.OnBadFrame();
          PushReady(c, EncodeResponse(
                           ErrorResponse(Verb::kError, item.error)));
          c->close_after_flush = true;
          break;
      }
      if (c->unsent_bytes >=
          frontend_->options_.max_buffered_response_bytes) {
        c->paused = true;  // stop reading until the peer drains responses
      }
    }
    if (c->saw_eof && c->input.empty() && !c->awaiting_offload) {
      // Clean half-close: the peer sent its last request. Deliver every
      // queued response, then close. A torn trailing frame (parser left
      // mid-frame) is dropped silently, as the blocking server did.
      c->close_after_flush = true;
    }
  }

  void PushReady(Conn* c, std::string bytes) {
    c->unsent_bytes += bytes.size();
    Slot slot;
    slot.ready = true;
    slot.bytes = std::move(bytes);
    c->slots.push_back(std::move(slot));
  }

  // Vectored flush: batches up to kMaxFlushIovecs consecutive ready frames
  // into one writev, so a pipelined burst leaves in a handful of syscalls.
  void Flush(Conn* c) {
    while (!c->slots.empty() && c->slots.front().ready) {
      iovec iov[kMaxFlushIovecs];
      int iovcnt = 0;
      size_t offset = c->head_written;
      for (const Slot& slot : c->slots) {
        if (!slot.ready || iovcnt == kMaxFlushIovecs) {
          break;
        }
        iov[iovcnt].iov_base =
            const_cast<char*>(slot.bytes.data()) + offset;
        iov[iovcnt].iov_len = slot.bytes.size() - offset;
        ++iovcnt;
        offset = 0;
      }
      IoOutcome w = WritevSome(c->fd, iov, iovcnt);
      if (w.kind == IoOutcome::kWouldBlock) {
        if (!c->want_write) {
          c->want_write = true;
          c->write_blocked_since = EventClock::now();
        }
        return;  // the next EPOLLOUT edge resumes this flush
      }
      if (w.kind != IoOutcome::kProgress) {
        CloseConn(c);  // peer reset mid-response
        return;
      }
      c->want_write = false;
      c->unsent_bytes -= w.bytes;
      size_t n = w.bytes;
      while (n > 0) {
        Slot& head = c->slots.front();
        size_t remaining = head.bytes.size() - c->head_written;
        if (n >= remaining) {
          n -= remaining;
          c->head_written = 0;
          c->slots.pop_front();
          ++c->base_seq;
        } else {
          c->head_written += n;
          n = 0;
        }
      }
    }
  }

  void HandleCompletions() {
    std::vector<OffloadDone> done;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      done.swap(completions_);
    }
    for (OffloadDone& d : done) {
      auto it = conns_.find(d.conn_id);
      if (it == conns_.end() || it->second->dead) {
        continue;  // the connection died while its request ran
      }
      Conn* c = it->second.get();
      size_t idx = static_cast<size_t>(d.seq - c->base_seq);
      if (idx < c->slots.size() && !c->slots[idx].ready) {
        c->unsent_bytes += d.bytes.size();
        c->slots[idx].bytes = std::move(d.bytes);
        c->slots[idx].ready = true;
      }
      c->awaiting_offload = false;
      ServiceConn(c);  // dispatch the requests queued behind the offload
    }
  }

  void CheckDeadlines(TimePoint now) {
    const int read_to = frontend_->options_.read_timeout_ms;
    const int write_to = frontend_->options_.write_timeout_ms;
    if (read_to <= 0 && write_to <= 0) {
      return;
    }
    for (auto& entry : conns_) {
      Conn* c = entry.second.get();
      if (c->dead) {
        continue;
      }
      if (write_to > 0 && c->want_write &&
          ElapsedMs(c->write_blocked_since, now) >= write_to) {
        CloseConn(c);  // never-reading peer: shed the connection
        continue;
      }
      if (read_to > 0 && c->has_partial &&
          ElapsedMs(c->partial_since, now) >= read_to) {
        CloseConn(c);  // slow loris: the frame never finished arriving
        continue;
      }
      if (read_to > 0 && !c->has_partial && !c->awaiting_offload &&
          c->slots.empty() && c->input.empty() && !c->saw_eof &&
          ElapsedMs(c->last_activity, now) >= read_to) {
        CloseConn(c);  // idle persistent connection between requests
      }
    }
  }

  // Milliseconds until the earliest connection deadline, clamped to
  // [0, 1000] — the cap doubles as the loop's housekeeping tick.
  int NextTimeoutMs(TimePoint now) const {
    const int read_to = frontend_->options_.read_timeout_ms;
    const int write_to = frontend_->options_.write_timeout_ms;
    double best = 1000.0;
    for (const auto& entry : conns_) {
      const Conn* c = entry.second.get();
      if (c->dead) {
        continue;
      }
      if (write_to > 0 && c->want_write) {
        best = std::min(best,
                        write_to - ElapsedMs(c->write_blocked_since, now));
      }
      if (read_to > 0 && c->has_partial) {
        best = std::min(best, read_to - ElapsedMs(c->partial_since, now));
      }
      if (read_to > 0 && !c->has_partial && !c->awaiting_offload &&
          c->slots.empty() && c->input.empty() && !c->saw_eof) {
        best = std::min(best, read_to - ElapsedMs(c->last_activity, now));
      }
    }
    if (best <= 0) {
      return 0;
    }
    return static_cast<int>(std::min(best + 1.0, 1000.0));
  }

  void CloseConn(Conn* c) {
    if (c->dead) {
      return;
    }
    c->dead = true;
    ++dead_count_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    CloseFd(c->fd);
    c->fd = -1;
    frontend_->metrics_.OnConnectionClosed();
  }

  // Dead Conn objects outlive CloseConn until the end of the loop tick, so
  // stale pointers in the current epoll_wait batch stay valid.
  void ReapDead() {
    if (dead_count_ == 0) {
      return;
    }
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second->dead ? conns_.erase(it) : std::next(it);
    }
    dead_count_ = 0;
  }

  FrontEnd* frontend_;
  int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;  // shared; owned by the FrontEnd
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::mutex completions_mu_;
  std::vector<OffloadDone> completions_;

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  size_t dead_count_ = 0;
  std::vector<char> read_buf_;
};

// ---------------------------------------------------------------------------
// FrontEnd

FrontEnd::FrontEnd(ServerOptions options, DispatchFn dispatch,
                   OffloadPredicate offload)
    : options_(std::move(options)),
      dispatch_(std::move(dispatch)),
      offload_(std::move(offload)),
      num_workers_(ResolveWorkers(options_.event_workers)),
      metrics_(num_workers_) {}

FrontEnd::~FrontEnd() { Stop(); }

Status FrontEnd::Start() {
  if (started_) {
    return Status::FailedPrecondition("front end already started");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  VDB_ASSIGN_OR_RETURN(
      int listen_fd,
      ListenTcp(options_.host, options_.port, options_.backlog));
  Result<int> port = LocalPort(listen_fd);
  if (!port.ok()) {
    CloseFd(listen_fd);
    return port.status();
  }
  Status nonblocking = SetNonBlocking(listen_fd);
  if (!nonblocking.ok()) {
    CloseFd(listen_fd);
    return nonblocking;
  }
  workers_.clear();
  for (int i = 0; i < num_workers_; ++i) {
    workers_.push_back(std::make_unique<EventWorker>(this, i));
    Status init = workers_.back()->Init(listen_fd);
    if (!init.ok()) {
      workers_.clear();
      CloseFd(listen_fd);
      return init;
    }
  }
  listen_fd_ = listen_fd;
  port_ = *port;
  int executors = std::max(1, options_.offload_threads);
  for (int i = 0; i < executors; ++i) {
    offload_threads_.emplace_back([this] { OffloadLoop(); });
  }
  for (auto& worker : workers_) {
    worker->StartThread();
  }
  started_ = true;
  return Status::Ok();
}

void FrontEnd::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    return;
  }
  // Drain in dependency order: the offload executor first (it finishes any
  // in-flight request and posts the response to its worker), then the
  // workers (they deliver posted completions, give every connection one
  // final flush, and close), then the listener.
  {
    std::lock_guard<std::mutex> lock(offload_jobs_mu_);
    offload_stop_ = true;
  }
  offload_jobs_cv_.notify_all();
  for (std::thread& t : offload_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  offload_threads_.clear();
  for (auto& worker : workers_) {
    worker->RequestStop();
  }
  for (auto& worker : workers_) {
    worker->Join();
  }
  workers_.clear();
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void FrontEnd::EnqueueOffload(OffloadJob job) {
  int worker = job.worker;
  uint64_t conn_id = job.conn_id;
  uint64_t seq = job.seq;
  Verb verb = job.request.verb;
  {
    std::lock_guard<std::mutex> lock(offload_jobs_mu_);
    if (!offload_stop_) {
      offload_jobs_.push_back(std::move(job));
      offload_jobs_cv_.notify_one();
      return;
    }
  }
  // The executor already drained (front end stopping): fail the request
  // instead of leaving its response slot unfilled forever.
  workers_[static_cast<size_t>(worker)]->PostOffloadDone(
      conn_id, seq,
      EncodeResponse(ErrorResponse(
          verb, Status::FailedPrecondition("server is stopping"))));
}

void FrontEnd::OffloadLoop() {
  for (;;) {
    OffloadJob job;
    {
      std::unique_lock<std::mutex> lock(offload_jobs_mu_);
      offload_jobs_cv_.wait(lock, [this] {
        return offload_stop_ || !offload_jobs_.empty();
      });
      if (offload_jobs_.empty()) {
        if (offload_stop_) {
          return;
        }
        continue;
      }
      job = std::move(offload_jobs_.front());
      offload_jobs_.pop_front();
    }
    Stopwatch timer;
    Response response = dispatch_(job.request);
    metrics_.OnRequest(job.request.verb, response.status.ok(),
                       timer.ElapsedSeconds() * 1e6, job.worker);
    if (job.worker >= 0 && job.worker < static_cast<int>(workers_.size())) {
      workers_[static_cast<size_t>(job.worker)]->PostOffloadDone(
          job.conn_id, job.seq, EncodeResponse(response));
    }
  }
}

}  // namespace serve
}  // namespace vdb
