#include "serve/wire.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/string_util.h"
#include "video/video_io.h"  // Fnv1a32

namespace vdb {
namespace serve {
namespace {

constexpr char kMagic[4] = {'V', 'D', 'B', 'S'};

// Caps on decoded collection sizes, applied before any resize so a hostile
// length prefix cannot cause a large allocation.
constexpr uint32_t kMaxSuggestions = 1u << 16;
constexpr uint32_t kMaxTreeNodes = 1u << 21;
constexpr uint32_t kMaxVideos = 1u << 20;
constexpr uint32_t kMaxGenres = 1024;
constexpr uint32_t kMaxVerbRows = 1024;  // router adds per-shard rows
constexpr size_t kMaxNameLen = 1u << 16;
// QUERYFRAME caps: a signature is one TBA line (3 bytes per pixel), a raw
// frame is bounded by its dimensions.
constexpr size_t kMaxSignatureBytes = 3u << 16;
constexpr int kMaxFrameDim = 1 << 14;
constexpr uint32_t kMaxFrameHits = 1u << 16;

bool ValidVerb(uint8_t v) {
  return v >= static_cast<uint8_t>(Verb::kPing) &&
         v <= static_cast<uint8_t>(Verb::kQueryFrame);
}

Result<int> GetCount(BinaryReader* r, const char* what, uint32_t max) {
  VDB_ASSIGN_OR_RETURN(uint32_t n, r->GetU32(what));
  if (n > max) {
    return Status::Corruption(StrFormat("implausible %s %u", what, n));
  }
  return static_cast<int>(n);
}

Status ExpectEnd(const BinaryReader& r, const char* what) {
  if (!r.AtEnd()) {
    return Status::Corruption(
        StrFormat("trailing bytes after %s payload", what));
  }
  return Status::Ok();
}

void PutSuggestion(BinaryWriter* w, const SuggestionWire& s) {
  w->PutI32(s.video_id);
  w->PutI32(s.shot_index);
  w->PutDouble(s.var_ba);
  w->PutDouble(s.var_oa);
  w->PutDouble(s.distance);
  w->PutString(s.video_name);
  w->PutI32(s.scene_node);
  w->PutString(s.scene_label);
  w->PutI32(s.representative_frame);
}

Result<SuggestionWire> GetSuggestion(BinaryReader* r) {
  SuggestionWire s;
  VDB_ASSIGN_OR_RETURN(s.video_id, r->GetI32("suggestion video id"));
  VDB_ASSIGN_OR_RETURN(s.shot_index, r->GetI32("suggestion shot"));
  VDB_ASSIGN_OR_RETURN(s.var_ba, r->GetDouble("suggestion var BA"));
  VDB_ASSIGN_OR_RETURN(s.var_oa, r->GetDouble("suggestion var OA"));
  VDB_ASSIGN_OR_RETURN(s.distance, r->GetDouble("suggestion distance"));
  VDB_ASSIGN_OR_RETURN(s.video_name,
                       r->GetString("suggestion video name", kMaxNameLen));
  VDB_ASSIGN_OR_RETURN(s.scene_node, r->GetI32("suggestion scene node"));
  VDB_ASSIGN_OR_RETURN(s.scene_label,
                       r->GetString("suggestion scene label", kMaxNameLen));
  VDB_ASSIGN_OR_RETURN(s.representative_frame,
                       r->GetI32("suggestion rep frame"));
  return s;
}

void PutTreeNode(BinaryWriter* w, const TreeNodeWire& n) {
  w->PutI32(n.id);
  w->PutI32(n.parent);
  w->PutI32(n.level);
  w->PutI32(n.shot_index);
  w->PutI32(n.representative_frame);
  w->PutString(n.label);
  w->PutU32(static_cast<uint32_t>(n.children.size()));
  for (int child : n.children) {
    w->PutI32(child);
  }
}

Result<TreeNodeWire> GetTreeNode(BinaryReader* r) {
  TreeNodeWire n;
  VDB_ASSIGN_OR_RETURN(n.id, r->GetI32("node id"));
  VDB_ASSIGN_OR_RETURN(n.parent, r->GetI32("node parent"));
  VDB_ASSIGN_OR_RETURN(n.level, r->GetI32("node level"));
  VDB_ASSIGN_OR_RETURN(n.shot_index, r->GetI32("node shot"));
  VDB_ASSIGN_OR_RETURN(n.representative_frame, r->GetI32("node rep frame"));
  VDB_ASSIGN_OR_RETURN(n.label, r->GetString("node label", kMaxNameLen));
  VDB_ASSIGN_OR_RETURN(int child_count,
                       GetCount(r, "node child count", kMaxTreeNodes));
  n.children.resize(static_cast<size_t>(child_count));
  for (int& child : n.children) {
    VDB_ASSIGN_OR_RETURN(child, r->GetI32("node child"));
  }
  return n;
}

void PutVideoSummary(BinaryWriter* w, const VideoSummary& v) {
  w->PutI32(v.video_id);
  w->PutString(v.name);
  w->PutI32(v.frame_count);
  w->PutDouble(v.fps);
  w->PutI32(v.shot_count);
  w->PutI32(v.node_count);
  w->PutU32(static_cast<uint32_t>(v.genre_ids.size()));
  for (int g : v.genre_ids) {
    w->PutI32(g);
  }
  w->PutI32(v.form_id);
}

Result<VideoSummary> GetVideoSummary(BinaryReader* r) {
  VideoSummary v;
  VDB_ASSIGN_OR_RETURN(v.video_id, r->GetI32("summary video id"));
  VDB_ASSIGN_OR_RETURN(v.name, r->GetString("summary name", kMaxNameLen));
  VDB_ASSIGN_OR_RETURN(v.frame_count, r->GetI32("summary frame count"));
  VDB_ASSIGN_OR_RETURN(v.fps, r->GetDouble("summary fps"));
  VDB_ASSIGN_OR_RETURN(v.shot_count, r->GetI32("summary shot count"));
  VDB_ASSIGN_OR_RETURN(v.node_count, r->GetI32("summary node count"));
  VDB_ASSIGN_OR_RETURN(int genre_count,
                       GetCount(r, "summary genre count", kMaxGenres));
  v.genre_ids.resize(static_cast<size_t>(genre_count));
  for (int& g : v.genre_ids) {
    VDB_ASSIGN_OR_RETURN(g, r->GetI32("summary genre id"));
  }
  VDB_ASSIGN_OR_RETURN(v.form_id, r->GetI32("summary form id"));
  return v;
}

std::string EncodeRequestPayload(const Request& request) {
  BinaryWriter w;
  switch (request.verb) {
    case Verb::kPing:
      w.PutString(request.ping_token);
      break;
    case Verb::kStats:
    case Verb::kList:
      break;  // empty payload
    case Verb::kQuery:
      w.PutDouble(request.query.var_ba);
      w.PutDouble(request.query.var_oa);
      w.PutDouble(request.query.alpha);
      w.PutDouble(request.query.beta);
      w.PutI32(request.query.top_k);
      w.PutI32(request.query.genre_id);
      w.PutI32(request.query.form_id);
      w.PutU8(request.query.exact_band ? 1 : 0);
      break;
    case Verb::kTree:
      w.PutI32(request.tree.video_id);
      w.PutI32(request.tree.node_id);
      w.PutI32(request.tree.max_depth);
      break;
    case Verb::kReload:
      w.PutString(request.reload_path);
      break;
    case Verb::kQueryFrame:
      w.PutI32(request.query_frame.top_k);
      w.PutString(request.query_frame.signature_rgb);
      w.PutI32(request.query_frame.width);
      w.PutI32(request.query_frame.height);
      w.PutString(request.query_frame.frame_rgb);
      break;
    case Verb::kError:
      break;  // never sent; encodes as an empty payload
  }
  return w.TakeBuffer();
}

std::string EncodeResponsePayload(const Response& response) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(response.status.code()));
  w.PutString(response.status.message());
  if (!response.status.ok()) {
    return w.TakeBuffer();  // no body on errors
  }
  w.PutU32(response.shards_ok);
  w.PutU32(response.shards_total);
  switch (response.verb) {
    case Verb::kPing:
      w.PutString(response.ping_token);
      break;
    case Verb::kStats: {
      const StatsResponse& s = response.stats;
      w.PutU64(s.total_connections);
      w.PutU64(s.active_connections);
      w.PutU64(s.rejected_busy);
      w.PutU64(s.bad_frames);
      w.PutU64(s.reloads_ok);
      w.PutU64(s.reload_failures);
      w.PutU64(s.store_generation);
      w.PutI32(s.videos);
      w.PutI32(s.indexed_shots);
      w.PutI32(s.shard_id);
      w.PutI32(s.shard_count);
      w.PutU32(static_cast<uint32_t>(s.verbs.size()));
      for (const VerbStats& vs : s.verbs) {
        w.PutString(vs.verb);
        w.PutU64(vs.count);
        w.PutU64(vs.errors);
        w.PutDouble(vs.p50_us);
        w.PutDouble(vs.p95_us);
        w.PutDouble(vs.p99_us);
        w.PutDouble(vs.max_us);
      }
      break;
    }
    case Verb::kQuery:
      w.PutU64(response.query.in_band);
      w.PutU64(response.query.eligible);
      w.PutU32(static_cast<uint32_t>(response.query.suggestions.size()));
      for (const SuggestionWire& s : response.query.suggestions) {
        PutSuggestion(&w, s);
      }
      break;
    case Verb::kTree:
      w.PutI32(response.tree.root);
      w.PutI32(response.tree.shot_count);
      w.PutU32(static_cast<uint32_t>(response.tree.nodes.size()));
      for (const TreeNodeWire& n : response.tree.nodes) {
        PutTreeNode(&w, n);
      }
      break;
    case Verb::kList:
      w.PutU32(static_cast<uint32_t>(response.list.videos.size()));
      for (const VideoSummary& v : response.list.videos) {
        PutVideoSummary(&w, v);
      }
      break;
    case Verb::kReload:
      w.PutI32(response.reload.videos);
      w.PutI32(response.reload.indexed_shots);
      break;
    case Verb::kQueryFrame: {
      const QueryFrameResponse& qf = response.query_frame;
      w.PutU64(qf.query_tokens);
      w.PutU64(qf.candidates);
      w.PutU64(qf.probed);
      w.PutU32(static_cast<uint32_t>(qf.hits.size()));
      for (const FrameHitWire& hit : qf.hits) {
        w.PutI32(hit.video_id);
        w.PutI32(hit.shot_index);
        w.PutDouble(hit.score);
        w.PutString(hit.video_name);
      }
      break;
    }
    case Verb::kError:
      break;  // status only
  }
  return w.TakeBuffer();
}

}  // namespace

std::string_view VerbName(Verb verb) {
  switch (verb) {
    case Verb::kPing:
      return "ping";
    case Verb::kStats:
      return "stats";
    case Verb::kQuery:
      return "query";
    case Verb::kTree:
      return "tree";
    case Verb::kList:
      return "list";
    case Verb::kReload:
      return "reload";
    case Verb::kError:
      return "error";
    case Verb::kQueryFrame:
      return "queryframe";
  }
  return "unknown";
}

uint8_t VerbWireVersion(Verb verb) {
  // Every pre-existing verb stays at v2 so old peers interop unchanged;
  // only QUERYFRAME frames (requests and responses) are v3.
  return verb == Verb::kQueryFrame ? 3 : 2;
}

std::string EncodeFrame(Verb verb, bool is_response,
                        std::string_view payload) {
  BinaryWriter w;
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  w.PutU8(VerbWireVersion(verb));
  w.PutU8(static_cast<uint8_t>(verb) | (is_response ? kResponseBit : 0));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Fnv1a32(reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size()));
  out += w.buffer();
  out.append(payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view header_bytes) {
  if (header_bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument(
        StrFormat("short frame header (%zu of %zu bytes)",
                  header_bytes.size(), kFrameHeaderSize));
  }
  if (std::memcmp(header_bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad frame magic; not a VDBS frame");
  }
  BinaryReader r(header_bytes.substr(sizeof(kMagic), kFrameHeaderSize - 4));
  VDB_ASSIGN_OR_RETURN(uint8_t version, r.GetU8("wire version"));
  if (version < kMinWireVersion || version > kWireVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported wire version %u (expected %u)", version,
                  kWireVersion));
  }
  VDB_ASSIGN_OR_RETURN(uint8_t type, r.GetU8("frame type"));
  FrameHeader header;
  header.version = version;
  header.is_response = (type & kResponseBit) != 0;
  uint8_t verb = type & ~kResponseBit;
  if (!ValidVerb(verb)) {
    return Status::InvalidArgument(
        StrFormat("unknown verb %u in frame type", verb));
  }
  header.verb = static_cast<Verb>(verb);
  if (version < VerbWireVersion(header.verb)) {
    return Status::InvalidArgument(
        StrFormat("verb %s requires wire version %u, frame is version %u",
                  std::string(VerbName(header.verb)).c_str(),
                  VerbWireVersion(header.verb), version));
  }
  VDB_ASSIGN_OR_RETURN(header.payload_size, r.GetU32("payload length"));
  if (header.payload_size > kMaxPayloadSize) {
    return Status::Corruption(
        StrFormat("implausible payload length %u", header.payload_size));
  }
  VDB_ASSIGN_OR_RETURN(header.checksum, r.GetU32("payload checksum"));
  return header;
}

Status ValidatePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_size) {
    return Status::Corruption(
        StrFormat("payload size %zu does not match header %u",
                  payload.size(), header.payload_size));
  }
  uint32_t actual = Fnv1a32(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  if (actual != header.checksum) {
    return Status::Corruption(
        StrFormat("payload checksum mismatch (header %08x, actual %08x)",
                  header.checksum, actual));
  }
  return Status::Ok();
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  VDB_ASSIGN_OR_RETURN(FrameHeader header,
                       DecodeFrameHeader(bytes.substr(
                           0, std::min(bytes.size(), kFrameHeaderSize))));
  std::string_view payload = bytes.substr(kFrameHeaderSize);
  VDB_RETURN_IF_ERROR(ValidatePayload(header, payload));
  Frame frame;
  frame.header = header;
  frame.payload = std::string(payload);
  return frame;
}

void FrameParser::Feed(std::string_view bytes) {
  if (poisoned_) {
    return;  // the stream is already lost; don't buffer more of it
  }
  // Compact before growing: everything before pos_ is consumed.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ >= (64u << 10))) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameParser::Next FrameParser::TryNext(Frame* frame, Status* error) {
  if (poisoned_) {
    *error = poison_status_;
    return Next::kError;
  }
  if (buffered_bytes() < kFrameHeaderSize) {
    return Next::kNeedMore;
  }
  std::string_view view = std::string_view(buffer_).substr(pos_);
  Result<FrameHeader> header =
      DecodeFrameHeader(view.substr(0, kFrameHeaderSize));
  if (!header.ok()) {
    poisoned_ = true;
    poison_status_ = header.status();
    *error = poison_status_;
    return Next::kError;
  }
  size_t total = kFrameHeaderSize + header->payload_size;
  if (view.size() < total) {
    return Next::kNeedMore;
  }
  std::string_view payload = view.substr(kFrameHeaderSize,
                                         header->payload_size);
  Status valid = ValidatePayload(*header, payload);
  if (!valid.ok()) {
    poisoned_ = true;
    poison_status_ = valid;
    *error = poison_status_;
    return Next::kError;
  }
  frame->header = *header;
  frame->payload.assign(payload.data(), payload.size());
  pos_ += total;
  return Next::kFrame;
}

std::string EncodeRequest(const Request& request) {
  return EncodeFrame(request.verb, /*is_response=*/false,
                     EncodeRequestPayload(request));
}

Result<Request> DecodeRequest(const FrameHeader& header,
                              std::string_view payload) {
  if (header.is_response) {
    return Status::InvalidArgument("response frame where request expected");
  }
  if (header.verb == Verb::kError) {
    return Status::InvalidArgument("kError is not a request verb");
  }
  Request request;
  request.verb = header.verb;
  BinaryReader r(payload);
  switch (header.verb) {
    case Verb::kPing: {
      VDB_ASSIGN_OR_RETURN(request.ping_token,
                           r.GetString("ping token", kMaxNameLen));
      break;
    }
    case Verb::kStats:
    case Verb::kList:
      break;
    case Verb::kQuery: {
      QueryRequest& q = request.query;
      VDB_ASSIGN_OR_RETURN(q.var_ba, r.GetDouble("query var BA"));
      VDB_ASSIGN_OR_RETURN(q.var_oa, r.GetDouble("query var OA"));
      VDB_ASSIGN_OR_RETURN(q.alpha, r.GetDouble("query alpha"));
      VDB_ASSIGN_OR_RETURN(q.beta, r.GetDouble("query beta"));
      VDB_ASSIGN_OR_RETURN(q.top_k, r.GetI32("query top k"));
      VDB_ASSIGN_OR_RETURN(q.genre_id, r.GetI32("query genre id"));
      VDB_ASSIGN_OR_RETURN(q.form_id, r.GetI32("query form id"));
      VDB_ASSIGN_OR_RETURN(uint8_t exact, r.GetU8("query exact band"));
      q.exact_band = exact != 0;
      break;
    }
    case Verb::kTree: {
      VDB_ASSIGN_OR_RETURN(request.tree.video_id, r.GetI32("tree video id"));
      VDB_ASSIGN_OR_RETURN(request.tree.node_id, r.GetI32("tree node id"));
      VDB_ASSIGN_OR_RETURN(request.tree.max_depth,
                           r.GetI32("tree max depth"));
      break;
    }
    case Verb::kReload: {
      VDB_ASSIGN_OR_RETURN(request.reload_path,
                           r.GetString("reload path", kMaxNameLen));
      break;
    }
    case Verb::kQueryFrame: {
      QueryFrameRequest& q = request.query_frame;
      VDB_ASSIGN_OR_RETURN(q.top_k, r.GetI32("queryframe top k"));
      VDB_ASSIGN_OR_RETURN(
          q.signature_rgb,
          r.GetString("queryframe signature", kMaxSignatureBytes));
      if (q.signature_rgb.size() % 3 != 0) {
        return Status::Corruption(
            "queryframe signature is not 3 bytes per pixel");
      }
      VDB_ASSIGN_OR_RETURN(q.width, r.GetI32("queryframe width"));
      VDB_ASSIGN_OR_RETURN(q.height, r.GetI32("queryframe height"));
      if (q.width < 0 || q.height < 0 || q.width > kMaxFrameDim ||
          q.height > kMaxFrameDim) {
        return Status::Corruption(
            StrFormat("implausible queryframe dimensions %dx%d", q.width,
                      q.height));
      }
      VDB_ASSIGN_OR_RETURN(q.frame_rgb,
                           r.GetString("queryframe frame", kMaxPayloadSize));
      size_t expected = static_cast<size_t>(q.width) *
                        static_cast<size_t>(q.height) * 3;
      if (q.frame_rgb.size() != expected) {
        return Status::Corruption(
            StrFormat("queryframe frame bytes %zu do not match %dx%d",
                      q.frame_rgb.size(), q.width, q.height));
      }
      break;
    }
    case Verb::kError:
      break;  // unreachable; rejected above
  }
  VDB_RETURN_IF_ERROR(ExpectEnd(r, "request"));
  return request;
}

std::string EncodeResponse(const Response& response) {
  return EncodeFrame(response.verb, /*is_response=*/true,
                     EncodeResponsePayload(response));
}

Result<Response> DecodeResponse(const FrameHeader& header,
                                std::string_view payload) {
  if (!header.is_response) {
    return Status::InvalidArgument("request frame where response expected");
  }
  Response response;
  response.verb = header.verb;
  BinaryReader r(payload);
  VDB_ASSIGN_OR_RETURN(uint8_t code, r.GetU8("status code"));
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption(StrFormat("unknown status code %u", code));
  }
  VDB_ASSIGN_OR_RETURN(std::string message,
                       r.GetString("status message", kMaxNameLen));
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (!response.status.ok()) {
    VDB_RETURN_IF_ERROR(ExpectEnd(r, "error response"));
    return response;
  }
  VDB_ASSIGN_OR_RETURN(response.shards_ok, r.GetU32("shards ok"));
  VDB_ASSIGN_OR_RETURN(response.shards_total, r.GetU32("shards total"));
  switch (header.verb) {
    case Verb::kPing: {
      VDB_ASSIGN_OR_RETURN(response.ping_token,
                           r.GetString("ping token", kMaxNameLen));
      break;
    }
    case Verb::kStats: {
      StatsResponse& s = response.stats;
      VDB_ASSIGN_OR_RETURN(s.total_connections,
                           r.GetU64("total connections"));
      VDB_ASSIGN_OR_RETURN(s.active_connections,
                           r.GetU64("active connections"));
      VDB_ASSIGN_OR_RETURN(s.rejected_busy, r.GetU64("rejected busy"));
      VDB_ASSIGN_OR_RETURN(s.bad_frames, r.GetU64("bad frames"));
      VDB_ASSIGN_OR_RETURN(s.reloads_ok, r.GetU64("reloads ok"));
      VDB_ASSIGN_OR_RETURN(s.reload_failures, r.GetU64("reload failures"));
      VDB_ASSIGN_OR_RETURN(s.store_generation, r.GetU64("store generation"));
      VDB_ASSIGN_OR_RETURN(s.videos, r.GetI32("stats videos"));
      VDB_ASSIGN_OR_RETURN(s.indexed_shots, r.GetI32("stats shots"));
      VDB_ASSIGN_OR_RETURN(s.shard_id, r.GetI32("stats shard id"));
      VDB_ASSIGN_OR_RETURN(s.shard_count, r.GetI32("stats shard count"));
      VDB_ASSIGN_OR_RETURN(int rows, GetCount(&r, "verb rows", kMaxVerbRows));
      s.verbs.resize(static_cast<size_t>(rows));
      for (VerbStats& vs : s.verbs) {
        VDB_ASSIGN_OR_RETURN(vs.verb, r.GetString("verb name", kMaxNameLen));
        VDB_ASSIGN_OR_RETURN(vs.count, r.GetU64("verb count"));
        VDB_ASSIGN_OR_RETURN(vs.errors, r.GetU64("verb errors"));
        VDB_ASSIGN_OR_RETURN(vs.p50_us, r.GetDouble("verb p50"));
        VDB_ASSIGN_OR_RETURN(vs.p95_us, r.GetDouble("verb p95"));
        VDB_ASSIGN_OR_RETURN(vs.p99_us, r.GetDouble("verb p99"));
        VDB_ASSIGN_OR_RETURN(vs.max_us, r.GetDouble("verb max"));
      }
      break;
    }
    case Verb::kQuery: {
      VDB_ASSIGN_OR_RETURN(response.query.in_band, r.GetU64("query in band"));
      VDB_ASSIGN_OR_RETURN(response.query.eligible,
                           r.GetU64("query eligible"));
      VDB_ASSIGN_OR_RETURN(int count,
                           GetCount(&r, "suggestion count", kMaxSuggestions));
      response.query.suggestions.resize(static_cast<size_t>(count));
      for (SuggestionWire& s : response.query.suggestions) {
        VDB_ASSIGN_OR_RETURN(s, GetSuggestion(&r));
      }
      break;
    }
    case Verb::kTree: {
      VDB_ASSIGN_OR_RETURN(response.tree.root, r.GetI32("tree root"));
      VDB_ASSIGN_OR_RETURN(response.tree.shot_count,
                           r.GetI32("tree shot count"));
      VDB_ASSIGN_OR_RETURN(int count,
                           GetCount(&r, "tree node count", kMaxTreeNodes));
      response.tree.nodes.resize(static_cast<size_t>(count));
      for (TreeNodeWire& n : response.tree.nodes) {
        VDB_ASSIGN_OR_RETURN(n, GetTreeNode(&r));
      }
      break;
    }
    case Verb::kList: {
      VDB_ASSIGN_OR_RETURN(int count,
                           GetCount(&r, "video count", kMaxVideos));
      response.list.videos.resize(static_cast<size_t>(count));
      for (VideoSummary& v : response.list.videos) {
        VDB_ASSIGN_OR_RETURN(v, GetVideoSummary(&r));
      }
      break;
    }
    case Verb::kReload: {
      VDB_ASSIGN_OR_RETURN(response.reload.videos, r.GetI32("reload videos"));
      VDB_ASSIGN_OR_RETURN(response.reload.indexed_shots,
                           r.GetI32("reload shots"));
      break;
    }
    case Verb::kQueryFrame: {
      QueryFrameResponse& qf = response.query_frame;
      VDB_ASSIGN_OR_RETURN(qf.query_tokens,
                           r.GetU64("queryframe query tokens"));
      VDB_ASSIGN_OR_RETURN(qf.candidates, r.GetU64("queryframe candidates"));
      VDB_ASSIGN_OR_RETURN(qf.probed, r.GetU64("queryframe probed"));
      VDB_ASSIGN_OR_RETURN(int count,
                           GetCount(&r, "frame hit count", kMaxFrameHits));
      qf.hits.resize(static_cast<size_t>(count));
      for (FrameHitWire& hit : qf.hits) {
        VDB_ASSIGN_OR_RETURN(hit.video_id, r.GetI32("frame hit video id"));
        VDB_ASSIGN_OR_RETURN(hit.shot_index, r.GetI32("frame hit shot"));
        VDB_ASSIGN_OR_RETURN(hit.score, r.GetDouble("frame hit score"));
        VDB_ASSIGN_OR_RETURN(hit.video_name,
                             r.GetString("frame hit video name", kMaxNameLen));
      }
      break;
    }
    case Verb::kError:
      break;  // status only; nothing more to read
  }
  VDB_RETURN_IF_ERROR(ExpectEnd(r, "response"));
  return response;
}

}  // namespace serve
}  // namespace vdb
