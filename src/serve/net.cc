#include "serve/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace vdb {
namespace serve {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("port %d out of range", port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "not an IPv4 address: '" + host + "' (hostnames are not resolved)");
  }
  return addr;
}

Status SetTimeout(int fd, int optname, int timeout_ms) {
  if (timeout_ms <= 0) {
    return Status::Ok();
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt timeout");
  }
  return Status::Ok();
}

}  // namespace

Result<int> ListenTcp(const std::string& host, int port, int backlog) {
  VDB_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno(("bind " + host + StrFormat(":%d", port)).c_str());
    CloseFd(fd);
    return s;
  }
  if (listen(fd, backlog) != 0) {
    Status s = Errno("listen");
    CloseFd(fd);
    return s;
  }
  return fd;
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    return Errno("accept");
  }
}

Result<int> ConnectTcp(const std::string& host, int port, int timeout_ms) {
  VDB_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  // Connect with a deadline: non-blocking connect + poll, then restore
  // blocking mode for the request/response loop.
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status s = Errno(("connect " + host + StrFormat(":%d", port)).c_str());
    CloseFd(fd);
    return s;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (ready <= 0) {
      CloseFd(fd);
      return Status::IoError(
          StrFormat("connect %s:%d timed out after %d ms", host.c_str(),
                    port, timeout_ms));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      CloseFd(fd);
      return Status::IoError(StrFormat("connect %s:%d: %s", host.c_str(),
                                       port, std::strerror(err)));
    }
  }
  fcntl(fd, F_SETFL, flags);
  return fd;
}

Result<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Status ConfigureSocket(int fd, int read_timeout_ms, int write_timeout_ms) {
  VDB_RETURN_IF_ERROR(SetTimeout(fd, SO_RCVTIMEO, read_timeout_ms));
  VDB_RETURN_IF_ERROR(SetTimeout(fd, SO_SNDTIMEO, write_timeout_ms));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = send(fd, data.data() + written, data.size() - written,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("write timed out");
      }
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadExact(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) {
      if (got == 0) {
        return Status::NotFound("connection closed by peer");
      }
      return Status::IoError(
          StrFormat("connection closed mid-frame (%zu of %zu bytes)", got,
                    n));
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("read timed out");
      }
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Result<Frame> ReadFrame(int fd) {
  char header_bytes[kFrameHeaderSize];
  VDB_RETURN_IF_ERROR(ReadExact(fd, header_bytes, sizeof(header_bytes)));
  VDB_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::string_view(header_bytes, sizeof(header_bytes))));
  Frame frame;
  frame.header = header;
  frame.payload.resize(header.payload_size);
  if (header.payload_size > 0) {
    VDB_RETURN_IF_ERROR(
        ReadExact(fd, frame.payload.data(), frame.payload.size()));
  }
  VDB_RETURN_IF_ERROR(ValidatePayload(header, frame.payload));
  return frame;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl F_GETFL");
  }
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl F_SETFL O_NONBLOCK");
  }
  return Status::Ok();
}

IoOutcome ReadSome(int fd, char* buf, size_t n) {
  IoOutcome out;
  for (;;) {
    ssize_t r = recv(fd, buf, n, 0);
    if (r > 0) {
      out.kind = IoOutcome::kProgress;
      out.bytes = static_cast<size_t>(r);
      return out;
    }
    if (r == 0) {
      out.kind = IoOutcome::kEof;
      return out;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.kind = IoOutcome::kWouldBlock;
      return out;
    }
    out.kind = IoOutcome::kError;
    out.status = Errno("recv");
    return out;
  }
}

IoOutcome WritevSome(int fd, const iovec* iov, int iovcnt) {
  IoOutcome out;
  for (;;) {
    msghdr msg{};
    msg.msg_iov = const_cast<iovec*>(iov);
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t w = sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w >= 0) {
      out.kind = IoOutcome::kProgress;
      out.bytes = static_cast<size_t>(w);
      return out;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.kind = IoOutcome::kWouldBlock;
      return out;
    }
    out.kind = IoOutcome::kError;
    out.status = Errno("sendmsg");
    return out;
  }
}

IoOutcome AcceptSome(int listen_fd) {
  IoOutcome out;
  for (;;) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      out.kind = IoOutcome::kProgress;
      out.bytes = static_cast<size_t>(fd);
      return out;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      out.kind = IoOutcome::kWouldBlock;
      return out;
    }
    out.kind = IoOutcome::kError;
    out.status = Errno("accept");
    return out;
  }
}

Result<int> CreateEventFd() {
  int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) {
    return Errno("eventfd");
  }
  return fd;
}

void SignalEventFd(int fd) {
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
}

void DrainEventFd(int fd) {
  uint64_t value;
  while (read(fd, &value, sizeof(value)) > 0) {
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
  }
}

void CloseFd(int fd) {
  if (fd >= 0) {
    close(fd);
  }
}

}  // namespace serve
}  // namespace vdb
