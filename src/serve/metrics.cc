#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace vdb {
namespace serve {
namespace {

constexpr double kBucketBase = 1.3;

}  // namespace

LatencyHistogram::LatencyHistogram() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

double LatencyHistogram::UpperEdgeUs(int bucket) {
  return std::pow(kBucketBase, bucket);
}

int LatencyHistogram::BucketFor(double us) {
  if (!(us > 1.0)) {  // also catches NaN and negatives
    return 0;
  }
  int bucket =
      static_cast<int>(std::ceil(std::log(us) / std::log(kBucketBase)));
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

void LatencyHistogram::Record(double us) {
  buckets_[static_cast<size_t>(BucketFor(us))].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t whole = us > 0 ? static_cast<uint64_t>(std::ceil(us)) : 0;
  uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (whole > seen &&
         !max_us_.compare_exchange_weak(seen, whole,
                                        std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  max_us_.store(0, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::AccumulateBuckets(
    std::array<uint64_t, 80>* into) const {
  for (int i = 0; i < kNumBuckets; ++i) {
    (*into)[static_cast<size_t>(i)] +=
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return max_us_.load(std::memory_order_relaxed);
}

LatencyHistogram::Summary LatencyHistogram::SummarizeBuckets(
    const std::array<uint64_t, 80>& buckets, uint64_t max_us) {
  uint64_t total = 0;
  for (uint64_t c : buckets) {
    total += c;
  }
  Summary summary;
  summary.count = total;
  summary.max_us = static_cast<double>(max_us);
  if (total == 0) {
    return summary;
  }
  auto percentile = [&](double p) {
    uint64_t target = static_cast<uint64_t>(std::ceil(p * total));
    if (target < 1) target = 1;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets[static_cast<size_t>(i)];
      if (seen >= target) {
        return UpperEdgeUs(i);
      }
    }
    return UpperEdgeUs(kNumBuckets - 1);
  };
  summary.p50_us = percentile(0.50);
  summary.p95_us = percentile(0.95);
  summary.p99_us = percentile(0.99);
  return summary;
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  std::array<uint64_t, kNumBuckets> counts{};
  uint64_t max_us = AccumulateBuckets(&counts);
  return SummarizeBuckets(counts, max_us);
}

ServerMetrics::ServerMetrics(int shards)
    : shard_count_(std::max(1, shards)),
      shards_(new Shard[static_cast<size_t>(shard_count_)]) {}

void ServerMetrics::OnConnectionOpened() {
  total_connections_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::OnConnectionClosed() {
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool ServerMetrics::TryOpenConnection(uint64_t max_active) {
  uint64_t active = active_connections_.load(std::memory_order_relaxed);
  while (active < max_active) {
    if (active_connections_.compare_exchange_weak(
            active, active + 1, std::memory_order_relaxed)) {
      total_connections_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ServerMetrics::OnBusyRejected() {
  total_connections_.fetch_add(1, std::memory_order_relaxed);
  rejected_busy_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::OnBadFrame() {
  bad_frames_.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::OnReloadResult(bool ok) {
  (ok ? reloads_ok_ : reload_failures_)
      .fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::OnGenerationsSkipped(int skipped) {
  if (skipped > 0) {
    reload_failures_.fetch_add(static_cast<uint64_t>(skipped),
                               std::memory_order_relaxed);
  }
}

void ServerMetrics::SetStoreGeneration(uint64_t generation) {
  store_generation_.store(generation, std::memory_order_relaxed);
}

void ServerMetrics::OnRequest(Verb verb, bool ok, double latency_us,
                              int shard) {
  if (shard < 0 || shard >= shard_count_) {
    shard = 0;
  }
  PerVerb& row =
      shards_[static_cast<size_t>(shard)].verbs[static_cast<size_t>(verb)];
  // Publish count before errors: a reader that loads errors (acquire)
  // before count is then guaranteed count >= errors — a snapshot can never
  // show more failures than requests (a "negative ok-delta").
  row.count.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    row.errors.fetch_add(1, std::memory_order_release);
  }
  row.latency.Record(latency_us);
}

void ServerMetrics::ResetShard(int shard) {
  if (shard < 0 || shard >= shard_count_) {
    return;
  }
  for (auto& row : shards_[static_cast<size_t>(shard)].verbs) {
    // Zero errors before count so a reader using the errors-then-count
    // order sees (0, old) — consistent — rather than (old, 0).
    row.errors.store(0, std::memory_order_release);
    row.count.store(0, std::memory_order_release);
    row.latency.Reset();
  }
}

std::vector<VerbStats> ServerMetrics::VerbRows(int first_shard,
                                               int num_shards) const {
  std::vector<VerbStats> rows;
  for (int v = 0; v < kNumVerbs; ++v) {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t max_us = 0;
    std::array<uint64_t, LatencyHistogram::kNumBuckets> buckets{};
    for (int s = first_shard; s < first_shard + num_shards; ++s) {
      const PerVerb& row =
          shards_[static_cast<size_t>(s)].verbs[static_cast<size_t>(v)];
      // Errors before count (acquire): pairs with OnRequest's
      // count-then-errors(release) publication so this row can never read
      // more errors than requests; the residual ResetShard race is
      // clamped below.
      uint64_t row_errors = row.errors.load(std::memory_order_acquire);
      uint64_t row_count = row.count.load(std::memory_order_relaxed);
      errors += std::min(row_errors, row_count);
      count += row_count;
      max_us = std::max(max_us, row.latency.AccumulateBuckets(&buckets));
    }
    if (count == 0) {
      continue;
    }
    LatencyHistogram::Summary latency =
        LatencyHistogram::SummarizeBuckets(buckets, max_us);
    VerbStats out;
    out.verb = std::string(VerbName(static_cast<Verb>(v)));
    out.count = count;
    out.errors = std::min(errors, count);
    out.p50_us = latency.p50_us;
    out.p95_us = latency.p95_us;
    out.p99_us = latency.p99_us;
    out.max_us = latency.max_us;
    rows.push_back(std::move(out));
  }
  return rows;
}

std::vector<VerbStats> ServerMetrics::ShardSnapshot(int shard) const {
  if (shard < 0 || shard >= shard_count_) {
    return {};
  }
  return VerbRows(shard, 1);
}

StatsResponse ServerMetrics::Snapshot() const {
  StatsResponse stats;
  stats.total_connections =
      total_connections_.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  // An admission increments active before total, so a snapshot between the
  // two could read active > total; report the consistent clamp.
  stats.active_connections =
      std::min(stats.active_connections, stats.total_connections);
  stats.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  stats.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  stats.reloads_ok = reloads_ok_.load(std::memory_order_relaxed);
  stats.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  stats.store_generation = store_generation_.load(std::memory_order_relaxed);
  stats.verbs = VerbRows(0, shard_count_);
  return stats;
}

}  // namespace serve
}  // namespace vdb
