#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "serve/net.h"

namespace vdb {
namespace serve {
namespace {

// Transport-level failures worth a reconnect: a dead fd (earlier poison),
// an I/O error (ECONNRESET/EPIPE/timeout), or a torn/garbled frame. A
// non-OK *response* never lands here — the server answered, so retrying
// would re-run an application error.
bool RetryableTransportError(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition ||
         status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kCorruption;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               ClientOptions options) {
  VDB_ASSIGN_OR_RETURN(int fd,
                       ConnectTcp(host, port, options.connect_timeout_ms));
  Status configured =
      ConfigureSocket(fd, options.read_timeout_ms, options.write_timeout_ms);
  if (!configured.ok()) {
    CloseFd(fd);
    return configured;
  }
  Client client(fd);
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  return client;
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  CloseFd(fd_);
  fd_ = -1;
}

Status Client::Send(const Request& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  Status written = WriteAll(fd_, EncodeRequest(request));
  if (!written.ok()) {
    Close();
  }
  return written;
}

Result<Response> Client::Receive() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  Result<Frame> frame = ReadFrame(fd_);
  if (!frame.ok()) {
    Close();
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::IoError("server closed the connection");
    }
    return frame.status();
  }
  Result<Response> response = DecodeResponse(frame->header, frame->payload);
  if (!response.ok()) {
    Close();
  }
  return response;
}

Result<Response> Client::CallOnce(const Request& request) {
  VDB_RETURN_IF_ERROR(Send(request));
  VDB_ASSIGN_OR_RETURN(Response response, Receive());
  if (response.verb != request.verb && response.verb != Verb::kError) {
    Close();
    return Status::Corruption(
        "response verb does not match the request (stream out of sync)");
  }
  return response;
}

Result<Response> Client::Call(const Request& request) {
  Result<Response> result = CallOnce(request);
  for (int attempt = 0;
       attempt < options_.max_retries && !result.ok() &&
       RetryableTransportError(result.status()) && port_ >= 0;
       ++attempt) {
    int backoff_ms =
        options_.retry_backoff_ms * (1 << std::min(attempt, 10));
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    Result<Client> fresh = Connect(host_, port_, options_);
    if (!fresh.ok()) {
      result = fresh.status();
      continue;
    }
    *this = std::move(*fresh);
    result = CallOnce(request);
  }
  return result;
}

Result<std::vector<Response>> Client::CallPipelined(
    const std::vector<Request>& requests) {
  for (const Request& request : requests) {
    VDB_RETURN_IF_ERROR(Send(request));
  }
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (const Request& request : requests) {
    VDB_ASSIGN_OR_RETURN(Response response, Receive());
    if (response.verb != request.verb && response.verb != Verb::kError) {
      Close();
      return Status::Corruption(
          "response verb does not match the request (stream out of sync)");
    }
    responses.push_back(std::move(response));
  }
  return responses;
}

Result<std::string> Client::Ping(const std::string& token) {
  Request request;
  request.verb = Verb::kPing;
  request.ping_token = token;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.ping_token);
}

Result<StatsResponse> Client::Stats() {
  Request request;
  request.verb = Verb::kStats;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.stats);
}

Result<QueryResponse> Client::Query(const QueryRequest& query) {
  Request request;
  request.verb = Verb::kQuery;
  request.query = query;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.query);
}

Result<TreeResponse> Client::Tree(const TreeRequest& tree) {
  Request request;
  request.verb = Verb::kTree;
  request.tree = tree;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.tree);
}

Result<ListResponse> Client::List() {
  Request request;
  request.verb = Verb::kList;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.list);
}

Result<ReloadResponse> Client::Reload(const std::string& path) {
  Request request;
  request.verb = Verb::kReload;
  request.reload_path = path;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.reload);
}

Result<QueryFrameResponse> Client::QueryFrame(
    const QueryFrameRequest& query_frame) {
  Request request;
  request.verb = Verb::kQueryFrame;
  request.query_frame = query_frame;
  VDB_ASSIGN_OR_RETURN(Response response, Call(request));
  // Downgrade detection: a v2-era server cannot parse the v3 frame. Its
  // parser reports kInvalidArgument "unsupported wire version 3 ..." on a
  // kError response before dropping the connection; map that to a typed
  // kUnimplemented so callers can tell "server too old" from a bad request.
  if (response.verb == Verb::kError &&
      response.status.code() == StatusCode::kInvalidArgument &&
      response.status.message().find("unsupported wire version") !=
          std::string::npos) {
    return Status::Unimplemented(
        "server does not speak wire version 3 (QUERYFRAME): " +
        response.status.message());
  }
  VDB_RETURN_IF_ERROR(response.status);
  return std::move(response.query_frame);
}

}  // namespace serve
}  // namespace vdb
