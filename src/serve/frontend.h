#ifndef VDB_SERVE_FRONTEND_H_
#define VDB_SERVE_FRONTEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.h"
#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace serve {

class EventWorker;

struct ServerOptions {
  std::string host = "127.0.0.1";
  // 0 picks an ephemeral port; read the real one back with port().
  int port = 0;
  int backlog = 128;

  // Concurrent connection limit. A connection beyond the limit is answered
  // with a BUSY error frame and closed instead of silently queueing.
  // Admission is an atomic gauge check at accept time, so several event
  // workers accepting concurrently can never overshoot the limit.
  int max_connections = 32;

  // Per-connection deadlines; <= 0 disables. The read timeout bounds both
  // how long an idle persistent connection may sit between requests and how
  // long a started frame may take to finish arriving (the slow-loris
  // bound). The write timeout bounds how long buffered responses may sit
  // unsendable because the peer is not reading (write backpressure shed).
  int read_timeout_ms = 60'000;
  int write_timeout_ms = 10'000;

  // Event-loop worker threads; each runs its own epoll instance and owns
  // the connections it accepts (the listening socket is shared with
  // EPOLLEXCLUSIVE). <= 0 picks a small automatic value from the hardware
  // concurrency. The per-verb metrics histograms are sharded one per
  // worker and merged on STATS.
  int event_workers = 0;

  // Threads on the offload executor — the pool that runs whichever verbs
  // the FrontEnd's offload predicate diverts off the event loop. The
  // catalog server uses 1 (RELOADs serialise anyway); the cluster router
  // offloads every verb (its dispatch blocks on backend sockets) and sizes
  // this up.
  int offload_threads = 1;

  // Shard identity surfaced via STATS: which slice of a sharded catalog
  // this process serves. Set by vdbserve when the served store directory
  // carries a SHARDMAP (written by `vdbtool store-shard`); the cluster
  // router uses it to sanity-check its fan-out wiring. -1/0 = not part of
  // a shard set.
  int shard_id = -1;
  int shard_count = 0;

  // Pause reading a connection once this many encoded-response bytes are
  // buffered unsent (pipelining backpressure); reading resumes once the
  // buffer drains below half of this. Combined with the write timeout this
  // bounds the memory a never-reading client can pin.
  size_t max_buffered_response_bytes = 8u << 20;
};

// A Response with this verb/status and no body.
Response ErrorResponse(Verb verb, Status status);

// The reusable event-loop front end of the serving layer: edge-triggered
// epoll workers, pipelined request parsing with in-order response slots,
// vectored flushes, backpressure and loop-managed deadlines — everything
// below "what does a request mean". What a request means is injected:
//
//   dispatch  — Request -> Response, run inline on the event worker unless
//               the verb is offloaded; must be thread-safe.
//   offload   — verbs for which dispatch may block (disk, other sockets):
//               these run on the offload executor pool instead, and the
//               connection's later requests wait their turn behind the
//               unready response slot, keeping per-connection semantics
//               exactly sequential.
//
// The catalog Server offloads only RELOAD; the cluster Router offloads
// every verb, since its dispatch performs scatter-gather network calls.
class FrontEnd {
 public:
  using DispatchFn = std::function<Response(const Request&)>;
  using OffloadPredicate = std::function<bool(Verb)>;

  FrontEnd(ServerOptions options, DispatchFn dispatch,
           OffloadPredicate offload);

  // Stops the front end if it is still running.
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  // Binds the listening socket, starts the event workers and the offload
  // executor threads. Fails without side effects if the address cannot be
  // bound.
  Status Start();

  // Signal -> drain -> exit: stops accepting, finishes in-flight offloaded
  // requests, gives every connection one final flush of already-queued
  // responses, then closes them and joins the workers. Idempotent; Start
  // may not be called again afterwards.
  void Stop();

  // The port actually bound (meaningful after a successful Start).
  int port() const { return port_; }

  // The number of event-loop workers actually running (resolved from
  // ServerOptions::event_workers at construction).
  int event_workers() const { return num_workers_; }

  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }

  const ServerOptions& options() const { return options_; }

 private:
  friend class EventWorker;

  // One request diverted to the offload executor: worker `worker` owns
  // connection `conn_id`, whose response slot `seq` is waiting for the
  // dispatch result.
  struct OffloadJob {
    int worker = 0;
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    Request request;
  };

  // Hands a request to the executor pool; the encoded response is posted
  // back to the owning worker when dispatch finishes.
  void EnqueueOffload(OffloadJob job);
  void OffloadLoop();

  ServerOptions options_;
  DispatchFn dispatch_;
  OffloadPredicate offload_;
  int num_workers_ = 1;
  int listen_fd_ = -1;
  int port_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_conn_id_{1};

  std::vector<std::unique_ptr<EventWorker>> workers_;

  std::vector<std::thread> offload_threads_;
  std::mutex offload_jobs_mu_;
  std::condition_variable offload_jobs_cv_;
  std::deque<OffloadJob> offload_jobs_;
  bool offload_stop_ = false;

  ServerMetrics metrics_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_FRONTEND_H_
