#ifndef VDB_SERVE_METRICS_H_
#define VDB_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/wire.h"

namespace vdb {
namespace serve {

// Lock-free, log-bucketed latency histogram. Buckets grow geometrically by
// 1.3x per step, so a reported percentile is an upper bound within ~30 % of
// the true value — plenty for a STATS verb, and recording is a single
// relaxed fetch_add on the hot path.
class LatencyHistogram {
 public:
  LatencyHistogram();

  // Records one sample (microseconds). Thread-safe, wait-free.
  void Record(double us);

  // Zeroes every bucket and the max. Safe concurrently with Record and
  // Summarize; a racing Record may land before or after the wipe.
  void Reset();

  struct Summary {
    uint64_t count = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  // A consistent-enough snapshot: concurrent Records may or may not be
  // included, but counts never tear.
  Summary Summarize() const;

  // Shard-merge support: adds this histogram's buckets into `into` and
  // returns its max sample, so N per-worker histograms summarize as one.
  uint64_t AccumulateBuckets(std::array<uint64_t, 80>* into) const;
  static Summary SummarizeBuckets(const std::array<uint64_t, 80>& buckets,
                                  uint64_t max_us);

  // Bucket `i` covers latencies up to UpperEdgeUs(i); the last bucket is
  // open-ended (~16 minutes and beyond). Exposed for tests.
  static constexpr int kNumBuckets = 80;
  static double UpperEdgeUs(int bucket);

 private:
  static int BucketFor(double us);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> max_us_{0};  // rounded up to whole microseconds
};

// All the counters the server keeps, surfaced verbatim by the STATS verb
// (the database-shape fields of StatsResponse — videos, indexed shots —
// come from the current catalog snapshot, not from here). Every method is
// thread-safe.
//
// The per-request path (OnRequest) is sharded: the server constructs one
// shard per event-loop worker, each worker records into its own shard
// (cache-line separated, so the hot path never bounces a line between
// cores), and Snapshot() merges counts and histogram buckets across
// shards. Connection-level counters are rare enough to stay global.
class ServerMetrics {
 public:
  // `shards` is the number of independent per-verb recording lanes;
  // OnRequest takes a shard index in [0, shards).
  explicit ServerMetrics(int shards = 1);

  int shards() const { return shard_count_; }

  // A connection was accepted and admitted (counts toward total and the
  // active gauge).
  void OnConnectionOpened();
  void OnConnectionClosed();
  // Atomic admission: increments the active gauge (and the total) only if
  // the gauge is below `max_active`; returns whether it was admitted.
  // This is the accept-path check — with several workers accepting
  // concurrently, check-then-increment would overshoot the limit.
  bool TryOpenConnection(uint64_t max_active);
  // An accepted connection was turned away because the server was at its
  // max-connection limit (counts toward total but never active).
  void OnBusyRejected();
  // A frame failed header validation, checksum, or request decoding.
  void OnBadFrame();
  // One request of `verb` finished (ok or not) in `latency_us`, recorded
  // into `shard` (the calling worker's lane).
  void OnRequest(Verb verb, bool ok, double latency_us, int shard = 0);
  // One catalog (re)load finished; `ok` means the snapshot was swapped.
  void OnReloadResult(bool ok);
  // A store open skipped `skipped` corrupt generations before succeeding;
  // each counts as a reload failure even though serving continued.
  void OnGenerationsSkipped(int skipped);
  // The store generation now being served (0 for monolithic catalogs).
  void SetStoreGeneration(uint64_t generation);

  uint64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  // Zeroes one lane's per-verb counters and histograms. Used by the
  // cluster router when a shard's backend is replaced (a restarted
  // process starts from zero — stale outage latencies would otherwise
  // pollute the merged percentiles forever). Safe concurrently with
  // OnRequest and Snapshot: a snapshot racing the wipe may see the lane
  // partially zeroed, but never an inconsistent row (errors > count) —
  // Snapshot reads in the matching order and clamps.
  void ResetShard(int shard);

  // Fills every field of StatsResponse except `videos`/`indexed_shots`,
  // merging the per-shard rows. Verbs that never ran are omitted from the
  // per-verb rows.
  //
  // Consistency: a Snapshot concurrent with OnRequest or ResetShard never
  // yields a row whose errors exceed its count (no negative ok-deltas) nor
  // an active gauge above total connections. Writers publish count before
  // errors (release) and the reader loads errors before count (acquire);
  // the residual reset race is clamped.
  StatsResponse Snapshot() const;

  // The per-verb rows of one lane only, same consistency rules as
  // Snapshot. The router surfaces these as "shardK/<verb>" STATS rows.
  std::vector<VerbStats> ShardSnapshot(int shard) const;

 private:
  // Merged per-verb rows over lanes [first_shard, first_shard+num_shards).
  std::vector<VerbStats> VerbRows(int first_shard, int num_shards) const;

  struct PerVerb {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    LatencyHistogram latency;
  };
  // One worker's recording lane, padded so two workers' hot counters never
  // share a cache line.
  struct alignas(64) Shard {
    std::array<PerVerb, kNumVerbs> verbs;
  };

  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> active_connections_{0};
  std::atomic<uint64_t> rejected_busy_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> reloads_ok_{0};
  std::atomic<uint64_t> reload_failures_{0};
  std::atomic<uint64_t> store_generation_{0};
  int shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_METRICS_H_
