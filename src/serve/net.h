#ifndef VDB_SERVE_NET_H_
#define VDB_SERVE_NET_H_

#include <sys/uio.h>

#include <string>
#include <string_view>

#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace serve {

// Thin POSIX-socket helpers shared by Server and Client. Everything returns
// Status/Result like the rest of the library; no exceptions, no globals.
// The client side stays blocking with per-fd timeouts
// (SO_RCVTIMEO/SO_SNDTIMEO); the server side is nonblocking and driven by
// the epoll event loop in server.cc through the *Some helpers below.

// Binds and listens on host:port (port 0 picks an ephemeral port; read it
// back with LocalPort). Returns the listening fd.
Result<int> ListenTcp(const std::string& host, int port, int backlog);

// Blocking accept. Retries EINTR; any other failure (including the listener
// being shut down) is an IoError.
Result<int> AcceptConnection(int listen_fd);

// Blocking connect with a timeout. Returns the connected fd.
Result<int> ConnectTcp(const std::string& host, int port, int timeout_ms);

// The port a bound socket actually listens on.
Result<int> LocalPort(int fd);

// Read/write timeouts in milliseconds (<= 0 means no timeout). Also sets
// TCP_NODELAY — the protocol is strict request/response, so Nagle only
// adds latency.
Status ConfigureSocket(int fd, int read_timeout_ms, int write_timeout_ms);

// Writes all of `data`, retrying short writes and EINTR. Timeouts and peer
// resets surface as IoError.
Status WriteAll(int fd, std::string_view data);

// Reads exactly `n` bytes. EOF mid-read, timeouts and errors are IoError;
// EOF before the first byte is kNotFound, so callers can tell a clean
// disconnect from a torn frame.
Status ReadExact(int fd, char* buf, size_t n);

// Reads one whole frame: header, payload, checksum validation. kNotFound
// means the peer closed cleanly between frames; kCorruption and
// kInvalidArgument mean the stream is unsynchronised and the connection
// should be dropped.
Result<Frame> ReadFrame(int fd);

// ---------------------------------------------------------------------------
// Nonblocking primitives for the event loop. Each attempt reports exactly
// one of: progress (some bytes moved), would-block (try again on the next
// readiness edge), EOF (peer closed), or a hard error.

Status SetNonBlocking(int fd);

struct IoOutcome {
  enum Kind {
    kProgress,    // `bytes` were read/written
    kWouldBlock,  // EAGAIN: the fd is not ready; wait for the next edge
    kEof,         // the peer closed its end (reads only)
    kError,       // hard failure (ECONNRESET, EPIPE, ...); see `status`
  };
  Kind kind = kWouldBlock;
  size_t bytes = 0;
  Status status;
};

// One nonblocking recv into buf[0..n). Retries EINTR only.
IoOutcome ReadSome(int fd, char* buf, size_t n);

// One nonblocking vectored send (MSG_NOSIGNAL). Short writes report as
// kProgress with the byte count; the caller advances its iovecs.
IoOutcome WritevSome(int fd, const iovec* iov, int iovcnt);

// Nonblocking accept: kProgress carries the new fd in `bytes`, kWouldBlock
// means the backlog is drained. Used with edge-triggered readiness, so the
// caller loops until kWouldBlock.
IoOutcome AcceptSome(int listen_fd);

// eventfd(2) wrapper for cross-thread wakeups of an epoll loop.
Result<int> CreateEventFd();
void SignalEventFd(int fd);
void DrainEventFd(int fd);

// shutdown(2) both directions, best effort. A reader blocked on the fd
// wakes with EOF — used for server drain.
void ShutdownFd(int fd);

// close(2), ignoring errors; negative fds are a no-op.
void CloseFd(int fd);

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_NET_H_
