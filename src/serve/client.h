#ifndef VDB_SERVE_CLIENT_H_
#define VDB_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "serve/wire.h"
#include "util/result.h"

namespace vdb {
namespace serve {

struct ClientOptions {
  int connect_timeout_ms = 5'000;
  // How long one request may take end to end; also bounds how long a
  // RELOAD (the slowest verb) may keep the client waiting.
  int read_timeout_ms = 60'000;
  int write_timeout_ms = 10'000;
  // Reconnect-with-backoff (off by default): when a Call()'s transport
  // fails — ECONNRESET/EPIPE on a pooled connection whose backend
  // restarted, a torn frame, a poisoned fd from an earlier failure — the
  // client re-dials and retries the whole request up to `max_retries`
  // times, sleeping retry_backoff_ms, 2x, 4x, ... between attempts. Only
  // whole Calls retry, never the Send/Receive halves, where a replayed
  // request could desynchronize a pipelined stream. The cluster router's
  // connection pools turn this on; application errors the server itself
  // reports (non-OK Response status) are never retried.
  int max_retries = 0;
  int retry_backoff_ms = 10;
};

// Blocking client for the catalog query service: one TCP connection, one
// outstanding request at a time. Used by the tests, vdbload, and anything
// else that wants typed access to the server.
//
// Error model: transport and protocol failures (connect, torn frames, bad
// checksums) surface from Call() itself and poison the connection — every
// later call fails until a new client is connected. Application errors the
// *server* reports (unknown video id, bad top_k, BUSY) arrive as a Response
// whose status is non-OK; the typed helpers forward that status, and the
// connection remains usable (except BUSY, where the server hangs up).
//
// Not thread-safe: share nothing, or one client per thread.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port,
                                ClientOptions options = ClientOptions());

  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Sends one request frame and reads one response frame. The returned
  // Response may carry a non-OK status (an application error, or a BUSY /
  // malformed-frame report with verb kError). With max_retries > 0 a
  // transport failure reconnects and retries instead of sticking poisoned.
  Result<Response> Call(const Request& request);

  // Pipelining split of Call(): Send writes a request frame without waiting
  // for anything, Receive reads the next response frame. The server answers
  // in request order, so after N Sends the next N Receives pair up
  // one-to-one with them. Transport failures poison the connection exactly
  // as Call does.
  Status Send(const Request& request);
  Result<Response> Receive();

  // Sends every request back to back, then reads every response; the result
  // has the same length and order as `requests`. One torn frame poisons the
  // whole batch (the stream is unsynchronised beyond it).
  Result<std::vector<Response>> CallPipelined(
      const std::vector<Request>& requests);

  // Typed shorthands; each forwards a non-OK response status as the error.
  Result<std::string> Ping(const std::string& token);
  Result<StatsResponse> Stats();
  Result<QueryResponse> Query(const QueryRequest& request);
  Result<TreeResponse> Tree(const TreeRequest& request);
  Result<ListResponse> List();
  // path empty = reload the server's current catalog set from disk.
  Result<ReloadResponse> Reload(const std::string& path = "");
  // Query-by-frame (wire v3). Version-negotiation guard: an old (v2-only)
  // server rejects the v3 frame at the parser with kInvalidArgument
  // "unsupported wire version ..." and hangs up; this helper surfaces that
  // as a typed kUnimplemented ("server too old"), never kCorruption.
  Result<QueryFrameResponse> QueryFrame(const QueryFrameRequest& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  // One send/receive round on the current connection, no retries.
  Result<Response> CallOnce(const Request& request);

  int fd_ = -1;
  // Where Connect() dialed, kept so Call() can re-dial on retry.
  std::string host_;
  int port_ = -1;
  ClientOptions options_;
};

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_CLIENT_H_
