#ifndef VDB_SERVE_WIRE_H_
#define VDB_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace vdb {
namespace serve {

// The catalog query service's wire protocol: length-prefixed binary frames
// following the util/binary_io conventions of the on-disk formats (magic,
// version, FNV-1a checksum). One request frame in, one response frame out,
// over a persistent TCP connection. This layer is pure bytes — no sockets —
// so every encode/decode path is unit-testable (and fuzzable) in isolation.
//
// Frame layout (all integers little-endian):
//
//   | offset | size | field                                        |
//   |--------|------|----------------------------------------------|
//   | 0      | 4    | magic "VDBS"                                 |
//   | 4      | 1    | wire version (kWireVersion)                  |
//   | 5      | 1    | type: verb, with 0x80 set on responses       |
//   | 6      | 4    | payload length                               |
//   | 10     | 4    | FNV-1a checksum of the payload               |
//   | 14     | ...  | payload (verb-specific, util/binary_io)      |
//
// Any truncation, oversized length, bad magic or checksum mismatch decodes
// as kCorruption / kInvalidArgument — never a crash or an over-read.

// Request verbs. kError never appears in a request; the server uses it for
// connection-level failures (BUSY rejection, malformed frames) where no
// request verb is available to echo.
enum class Verb : uint8_t {
  kPing = 1,
  kStats = 2,
  kQuery = 3,
  kTree = 4,
  kList = 5,
  kReload = 6,
  kError = 7,
  kQueryFrame = 8,  // v3: query-by-frame against the sketch index
};
inline constexpr int kNumVerbs = 9;  // dense: index stats arrays by verb

// Stable lower-case name ("ping", "query", ...) for logs and STATS.
std::string_view VerbName(Verb verb);

// Version history: v1 = PR-2 single-node protocol; v2 adds the cluster
// fields (exact-band queries, in-band/eligible counts, shard identity in
// STATS, shards_ok/shards_total health on every OK response); v3 adds the
// QUERYFRAME verb (query-by-frame against the signature sketch index).
//
// Negotiation is per-frame: every verb encodes at the lowest version that
// carries it (VerbWireVersion), and decoding accepts the whole
// [kMinWireVersion, kWireVersion] range. A v2-era peer therefore interops
// on every old verb unchanged, and rejects a v3 QUERYFRAME frame with
// kInvalidArgument "unsupported wire version ..." — which the new client's
// typed QueryFrame helper surfaces as kUnimplemented (client.h).
inline constexpr uint8_t kWireVersion = 3;
inline constexpr uint8_t kMinWireVersion = 2;
inline constexpr size_t kFrameHeaderSize = 14;
inline constexpr uint8_t kResponseBit = 0x80;
// Upper bound on a frame payload; a length prefix beyond this is treated as
// corruption before any allocation happens.
inline constexpr uint32_t kMaxPayloadSize = 32u << 20;

// The lowest wire version that carries `verb` — the version its frames are
// encoded at.
uint8_t VerbWireVersion(Verb verb);

struct FrameHeader {
  Verb verb = Verb::kError;
  bool is_response = false;
  // The version byte the frame arrived with (in [kMinWireVersion,
  // kWireVersion]).
  uint8_t version = kWireVersion;
  uint32_t payload_size = 0;
  uint32_t checksum = 0;
};

// Frames `payload` into header + bytes ready for the wire.
std::string EncodeFrame(Verb verb, bool is_response, std::string_view payload);

// Decodes exactly kFrameHeaderSize bytes. The payload is *not* read here —
// callers read `payload_size` more bytes and run ValidatePayload.
Result<FrameHeader> DecodeFrameHeader(std::string_view header_bytes);

// Checksum + size check of a received payload against its header.
Status ValidatePayload(const FrameHeader& header, std::string_view payload);

// One whole frame in one buffer (tests, corpus decoding). The buffer must
// contain exactly one frame; trailing bytes are corruption.
struct Frame {
  FrameHeader header;
  std::string payload;
};
Result<Frame> DecodeFrame(std::string_view bytes);

// Incremental frame extraction from a pipelined byte stream: Feed() appends
// whatever arrived on the socket, TryNext() peels off complete frames in
// order. Frame boundaries are discovered from the length prefix, so a
// stream of concatenated frames needs no separators, and a hostile length
// prefix is rejected on the 14 header bytes alone — before any payload
// buffer is sized.
//
// Once a frame fails validation (bad magic/version/verb, oversized length,
// checksum mismatch) the byte stream is unsynchronised and cannot be
// re-entered: the parser stays poisoned and every later TryNext() repeats
// kError. Callers report the error and drop the connection.
class FrameParser {
 public:
  enum class Next {
    kFrame,     // *frame holds the next complete frame, consumed
    kNeedMore,  // the buffered bytes end mid-frame (or are empty)
    kError,     // the stream is unsynchronised; *error says why
  };

  // Appends bytes received from the peer. No parsing happens here.
  void Feed(std::string_view bytes);

  // Extracts the next complete frame, if the buffer holds one.
  Next TryNext(Frame* frame, Status* error);

  // Bytes buffered but not yet consumed by TryNext.
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

  // True when the buffered bytes start a frame that has not fully arrived —
  // the state a slow-loris client holds a connection in.
  bool mid_frame() const { return !poisoned_ && buffered_bytes() > 0; }

  bool poisoned() const { return poisoned_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;  // consumed prefix, compacted opportunistically
  bool poisoned_ = false;
  Status poison_status_;
};

// ---------------------------------------------------------------------------
// Requests

// Variance impression query (Section 4.2) with optional class filter
// (Section 4.1): genre_id / form_id of -1 mean "any".
struct QueryRequest {
  double var_ba = 0.0;
  double var_oa = 0.0;
  double alpha = 1.0;
  double beta = 1.0;
  int top_k = 5;
  int genre_id = -1;
  int form_id = -1;
  // When true the server answers strictly inside the (alpha, beta) band —
  // no widening — and fills QueryResponse::in_band/eligible. The cluster
  // router uses this to drive the widening loop itself so a sharded
  // QUERY merges to exactly the single-node answer.
  bool exact_band = false;
};

// Scene-tree subtree for browsing. node_id -1 means the root; max_depth -1
// means the whole subtree, 0 just the node itself, 1 node + children, ...
struct TreeRequest {
  int video_id = -1;
  int node_id = -1;
  int max_depth = -1;
};

// Query-by-frame (v3): either a precomputed frame signature (the TBA line,
// 3 bytes per pixel, so signature_rgb.size() = 3 * L) or a raw RGB frame
// (width * height * 3 bytes, row-major) the server reduces itself. Exactly
// one of the two must be present; the wire codec checks structure (lengths,
// caps), the server checks the either-or.
struct QueryFrameRequest {
  int top_k = 5;
  std::string signature_rgb;  // empty when querying by raw frame
  int width = 0;              // raw-frame form; 0 when absent
  int height = 0;
  std::string frame_rgb;

  bool has_signature() const { return !signature_rgb.empty(); }
  bool has_frame() const { return width > 0 && height > 0; }
};

struct Request {
  Verb verb = Verb::kPing;
  std::string ping_token;   // kPing: echoed back verbatim
  QueryRequest query;       // kQuery
  TreeRequest tree;         // kTree
  std::string reload_path;  // kReload: empty = re-read the startup paths
  QueryFrameRequest query_frame;  // kQueryFrame
};

// Encodes a full request frame (header + payload).
std::string EncodeRequest(const Request& request);

// Decodes a request payload whose frame header was already validated.
Result<Request> DecodeRequest(const FrameHeader& header,
                              std::string_view payload);

// ---------------------------------------------------------------------------
// Responses

// One retrieval answer (mirrors core's BrowsingSuggestion without pulling
// the core headers into the wire layer).
struct SuggestionWire {
  int video_id = -1;
  int shot_index = -1;
  double var_ba = 0.0;
  double var_oa = 0.0;
  double distance = 0.0;
  std::string video_name;
  int scene_node = -1;
  std::string scene_label;
  int representative_frame = -1;
};

struct QueryResponse {
  std::vector<SuggestionWire> suggestions;
  // Filled on exact-band queries: how many shots matched the band before
  // top-k truncation, and how many indexed shots could ever match (the
  // class size under a filter, else the index size). Zero otherwise.
  uint64_t in_band = 0;
  uint64_t eligible = 0;
};

// Scene-tree node with its original in-tree id, so a full-tree response can
// be reassembled exactly and a depth-limited one still names real nodes.
struct TreeNodeWire {
  int id = -1;
  int parent = -1;
  int level = 0;
  int shot_index = -1;
  int representative_frame = -1;
  std::string label;  // "SN_7^1"
  std::vector<int> children;
};

struct TreeResponse {
  int root = -1;
  int shot_count = 0;
  std::vector<TreeNodeWire> nodes;  // pre-order from the requested node
};

struct VideoSummary {
  int video_id = -1;
  std::string name;
  int frame_count = 0;
  double fps = 0.0;
  int shot_count = 0;
  int node_count = 0;
  std::vector<int> genre_ids;
  int form_id = -1;
};

struct ListResponse {
  std::vector<VideoSummary> videos;
};

// Per-verb service counters; latency percentiles come from the server's
// log-bucketed histogram, so they are upper bounds with ~30 % resolution.
struct VerbStats {
  std::string verb;
  uint64_t count = 0;
  uint64_t errors = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct StatsResponse {
  uint64_t total_connections = 0;
  uint64_t active_connections = 0;
  uint64_t rejected_busy = 0;
  uint64_t bad_frames = 0;
  // Catalog reload health: successful RELOADs, failed RELOADs plus store
  // generations skipped as corrupt, and the store generation currently
  // served (0 when the catalogs are monolithic files, not a store).
  uint64_t reloads_ok = 0;
  uint64_t reload_failures = 0;
  uint64_t store_generation = 0;
  int videos = 0;
  int indexed_shots = 0;
  // Shard identity: which shard of how many this backend serves, read from
  // the store's SHARDMAP file. A non-sharded catalog reports -1 / 0; the
  // router reports -1 / <cluster shard count>.
  int shard_id = -1;
  int shard_count = 0;
  std::vector<VerbStats> verbs;
};

struct ReloadResponse {
  int videos = 0;
  int indexed_shots = 0;
};

// One ranked query-by-frame answer (mirrors index::FrameHit plus the video
// name, keeping core headers out of the wire layer).
struct FrameHitWire {
  int video_id = -1;
  int shot_index = -1;
  double score = 0.0;
  std::string video_name;
};

struct QueryFrameResponse {
  std::vector<FrameHitWire> hits;
  // Probe accounting (index::FrameQueryStats): distinct query tokens,
  // postings scanned, distinct shots touched. The router sums candidates
  // and probed across shards, which reproduces the merged single-node
  // counts exactly (shards partition the posting lists).
  uint64_t query_tokens = 0;
  uint64_t candidates = 0;
  uint64_t probed = 0;
};

// A response always carries a Status; the verb-specific body is only
// present (and only encoded) when the status is OK.
struct Response {
  Verb verb = Verb::kError;
  Status status;
  // Degraded-mode health, carried on every OK response: how many shards
  // contributed to this answer out of how many the cluster has. A
  // single-node server always reports 0/0 ("not sharded"); the router
  // reports shards_ok < shards_total instead of failing when a shard and
  // its replica are both unreachable.
  uint32_t shards_ok = 0;
  uint32_t shards_total = 0;
  std::string ping_token;  // kPing
  QueryResponse query;     // kQuery
  TreeResponse tree;       // kTree
  ListResponse list;       // kList
  StatsResponse stats;     // kStats
  ReloadResponse reload;   // kReload
  QueryFrameResponse query_frame;  // kQueryFrame
};

// Encodes a full response frame (header + payload).
std::string EncodeResponse(const Response& response);

// Decodes a response payload whose frame header was already validated.
Result<Response> DecodeResponse(const FrameHeader& header,
                                std::string_view payload);

}  // namespace serve
}  // namespace vdb

#endif  // VDB_SERVE_WIRE_H_
