#ifndef VDB_FARM_DISPATCHER_H_
#define VDB_FARM_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "stream/dispatch.h"
#include "util/status.h"

namespace vdb {
namespace farm {

// The farm's fair scheduler: a weighted round-robin dispatcher that feeds
// shared signature workers one frame of one tenant's work at a time.
//
// Every tenant registers a slot (AddTenant) whose handle is wired into its
// pipeline (PipelineOptions::dispatcher). Shared workers run RunWorker();
// each iteration picks the next tenant in round-robin order that (a) has
// work hinted available and (b) has fair-share credits left this round,
// then performs exactly one ProcessOne step. Credits refill to the
// tenant's weight once every tenant's are spent, so over any window the
// service ratio between two backlogged tenants tracks their weight ratio —
// a hot stream cannot starve the rest, because its extra frames queue in
// its own bounded decode queue while the scheduler keeps cycling.
//
// Work hints keep the loop from busy-spinning: a slot is pollable when its
// pipeline pushed a decoded frame (NotifyWork) or its last step made
// progress. When nothing is pollable, workers sleep on a condition
// variable with a short timeout and then re-poll every attached tenant —
// downstream backpressure clears without any notify arriving, so the
// timeout is the liveness backstop.
class FairDispatcher {
 public:
  struct Options {
    // Re-poll cadence while no work hints arrive.
    int idle_repoll_micros = 2000;
  };

  FairDispatcher();
  explicit FairDispatcher(Options options);
  ~FairDispatcher();

  FairDispatcher(const FairDispatcher&) = delete;
  FairDispatcher& operator=(const FairDispatcher&) = delete;

  // Registers tenant `tenant_index` with fair-share `weight` (>= 1) and
  // returns the dispatcher handle its pipeline must be pointed at. The
  // handle is owned by the dispatcher and stays valid for its lifetime.
  // Call before workers start (the farm registers every admitted tenant
  // up front).
  stream::SignatureDispatcher* AddTenant(int tenant_index, int weight);

  // Worker loop body; run one per shared signature worker thread. Returns
  // once Close() was called and every attached source has detached.
  Status RunWorker();

  // No further tenants will register; workers exit when all work is done.
  void Close();

  // Signature steps served per tenant, indexed by tenant_index.
  std::vector<uint64_t> ProcessedCounts() const;

  // Live queue counters of tenant `tenant_index`'s pipeline; false while
  // its source is not attached.
  bool QueueStats(int tenant_index, stream::TenantQueueStats* out) const;

  // Invoked (without the dispatcher lock held) the first time each
  // tenant's stream finishes — the farm snapshots per-tenant progress here
  // for the fairness record. Set before workers start.
  std::function<void(int tenant_index)> finished_callback;

 private:
  struct Slot;
  class Handle;

  Status Attach(Slot* slot, stream::SignatureWorkSource* source);
  void Detach(Slot* slot, stream::SignatureWorkSource* source);
  void Notify(Slot* slot);

  // All three require mu_ held.
  Slot* PickLocked();
  bool AllDoneLocked() const;
  void RepollLocked();

  void ReportFinished(int tenant_index);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;    // a slot may have become pollable
  std::condition_variable detach_cv_;  // a slot's in_use dropped to zero
  std::vector<std::unique_ptr<Slot>> slots_;
  size_t cursor_ = 0;
  bool closed_ = false;
};

}  // namespace farm
}  // namespace vdb

#endif  // VDB_FARM_DISPATCHER_H_
