#ifndef VDB_FARM_FARM_H_
#define VDB_FARM_FARM_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/video_database.h"
#include "farm/committer.h"
#include "farm/dispatcher.h"
#include "stream/frame_source.h"
#include "stream/pipeline.h"
#include "util/fs.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace vdb {
namespace farm {

// One tenant offered to the farm.
struct StreamSpec {
  // Catalog name of the tenant; empty uses source->name(). Must be unique
  // within the farm (each tenant owns one catalog entry).
  std::string name;

  std::unique_ptr<stream::FrameSource> source;

  // Fair-share weight (>= 1): a weight-3 tenant gets ~3x the signature
  // service of a weight-1 tenant when both are backlogged. Doubles as shed
  // priority — past the deadline, the lowest weight is shed first.
  int weight = 1;

  // Real-time target of this stream; frames arriving at target_fps should
  // be analysed as fast as they arrive. 0 = no deadline (lag never
  // measured, never shed).
  double target_fps = 0.0;
};

struct FarmOptions {
  // Analysis knobs shared by every tenant (one store = one configuration).
  VideoDatabaseOptions database;

  // Admission cap: offering more streams than this is refused up front
  // with kUnavailable (nothing is partially admitted). <= 0 = unlimited.
  int max_streams = 16;

  // Shared signature workers; <= 0 uses HardwareThreads().
  int signature_workers = 0;

  // Capacity of each tenant's inter-stage queues — the per-stream
  // frames-in-flight budget. A hot stream fills its own queues and blocks
  // its own decoder; it cannot crowd other tenants out of memory.
  int queue_capacity = 4;

  // Checkpoint cadence per tenant (see PipelineOptions); either trigger
  // requires publish_dir.
  int checkpoint_every_shots = 0;
  double checkpoint_every_media_seconds = 0.0;

  // The shared store every tenant publishes into through the farm's single
  // committer. Empty = analyse only, never publish.
  std::string publish_dir;

  // When set, the committer asks this vdbserve to RELOAD after publishes
  // (batched: back-to-back checkpoint commits coalesce into one reload).
  std::string reload_host;
  int reload_port = 0;

  // Graceful degradation: when a tenant with a target_fps falls more than
  // this many seconds behind real time, the farm sheds the lowest-weight
  // lagging tenant (cancelling its pipeline; its last published checkpoint
  // stays intact and a later Resume picks it up). 0 = never shed.
  double shed_after_seconds = 0.0;

  // Cadence of the lag/shed monitor.
  double monitor_interval_seconds = 0.005;

  // Test-only crash injection, forwarded to every store publish.
  FaultHook fault_hook;

  // Test hook: a tenant's checkpoint committed as `generation`.
  std::function<void(int tenant_index, uint64_t generation)>
      checkpoint_callback;
};

enum class StreamState {
  kPending,    // admitted, not yet started
  kRunning,
  kFinished,   // ran to the end of its source
  kShed,       // cancelled by the lag monitor
  kCancelled,  // cancelled by Cancel()
  kFailed,     // pipeline error
};

const char* StreamStateName(StreamState state);

// Live per-tenant counters, snapshotted by Metrics().
struct StreamMetrics {
  std::string name;
  StreamState state = StreamState::kPending;
  int weight = 1;
  double target_fps = 0.0;
  int frames_total = 0;
  long frames_done = 0;         // frames finalized so far
  uint64_t signature_steps = 0;  // work units the dispatcher served it
  double lag_seconds = 0.0;      // behind real time (target_fps only)
  bool lagging = false;
  stream::TenantQueueStats queues;
};

struct FarmMetrics {
  double elapsed_seconds = 0.0;
  int running = 0;
  int finished = 0;
  int shed = 0;
  int cancelled = 0;
  int failed = 0;
  uint64_t publishes = 0;
  uint64_t store_generation = 0;
  int reloads_ok = 0;
  int reload_failures = 0;
  int reloads_coalesced = 0;
  std::vector<StreamMetrics> streams;
};

// What one tenant's run came to.
struct StreamOutcome {
  std::string name;
  StreamState state = StreamState::kPending;
  Status status;  // the pipeline's failure; Ok unless state == kFailed
  // The finished analysis — byte-identical to a solo vdbstream run of the
  // same source. Empty (frame_count == 0) when shed/cancelled/failed.
  CatalogEntry entry;
  stream::PipelineReport report;
};

struct FarmReport {
  std::vector<StreamOutcome> streams;  // index-aligned with the specs
  double wall_seconds = 0.0;
  uint64_t publishes = 0;
  uint64_t store_generation = 0;  // newest generation the farm committed
  int reloads_ok = 0;
  int reload_failures = 0;
  int reloads_coalesced = 0;

  // Fairness record: each time a tenant finished, the per-tenant
  // frames-done counters at that instant (index-aligned with the specs).
  // The first snapshot is the fairness test's evidence — under skewed
  // offered load, min/max of the still-running tenants' progress stays
  // within the weighted bound.
  std::vector<std::vector<long>> completion_snapshots;

  FarmMetrics final_metrics;
};

// The multi-tenant real-time ingest farm: N streaming pipelines as tenants
// over one shared signature-worker pool, with admission control at the
// front, the FairDispatcher in the middle, and the single-committer store
// publish path at the back.
//
//   tenants (decode → q → [shared workers via FairDispatcher] → SBD →
//   finalize) ──checkpoints──> Committer ──one generation each──> store
//
// Per-tenant results are byte-identical to a solo run by construction: the
// dispatcher only changes *which thread* computes a signature and *when*,
// and the pipeline's reorder stage already makes those irrelevant.
//
// A StreamFarm object runs once (Run or Resume); Cancel() may be called
// from any thread while it runs, and Metrics() gives a live snapshot.
class StreamFarm {
 public:
  explicit StreamFarm(FarmOptions options);
  ~StreamFarm();

  StreamFarm(const StreamFarm&) = delete;
  StreamFarm& operator=(const StreamFarm&) = delete;

  // Admits and runs every spec to completion (or shed/cancel/failure).
  // Admission is all-or-nothing: over max_streams, a duplicate name, or a
  // missing source refuses the whole offer before any work starts —
  // kUnavailable for the cap, kInvalidArgument for malformed specs.
  // Individual tenant failures do NOT fail the farm; they land in that
  // tenant's StreamOutcome.
  Result<FarmReport> Run(std::vector<StreamSpec> specs);

  // Like Run, but every tenant first tries to resume from its checkpoint
  // in publish_dir (Pipeline::Resume); a tenant with no checkpoint yet is
  // admitted as a fresh run. Converges to the same store as an
  // uninterrupted Run — the farm restart path after a crash or shed.
  Result<FarmReport> Resume(std::vector<StreamSpec> specs);

  // Cooperative cancellation of every running tenant. Safe from any
  // thread, idempotent.
  void Cancel();

  // Live snapshot; callable from any thread while Run/Resume executes.
  FarmMetrics Metrics() const;

 private:
  struct Tenant;

  Result<FarmReport> Execute(std::vector<StreamSpec> specs, bool resume);
  Status ValidateSpecs(const std::vector<StreamSpec>& specs, bool resume);
  Status RunTenant(Tenant* tenant, bool resume);
  void MonitorLoop();
  void UpdateLagAndShed();
  void RecordCompletionSnapshot();
  FarmMetrics MetricsLocked() const;  // requires mu_

  FarmOptions options_;

  mutable std::mutex mu_;  // guards tenants_, snapshots, running_
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::vector<long>> completion_snapshots_;
  bool running_ = false;

  std::unique_ptr<FairDispatcher> dispatcher_;
  std::unique_ptr<Committer> committer_;
  std::atomic<int> active_{0};  // tenants not yet done
  std::atomic<bool> cancel_requested_{false};
  Stopwatch clock_;
};

}  // namespace farm
}  // namespace vdb

#endif  // VDB_FARM_FARM_H_
