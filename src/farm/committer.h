#ifndef VDB_FARM_COMMITTER_H_
#define VDB_FARM_COMMITTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/video_database.h"
#include "stream/pipeline.h"
#include "util/fs.h"
#include "util/result.h"

namespace vdb {
namespace farm {

struct CommitterOptions {
  // Must match the farm's analysis options (store entries round-trip
  // through a database built with these).
  VideoDatabaseOptions database;

  // The shared store directory every tenant publishes into.
  std::string dir;

  // When set, publishes ask this vdbserve instance to RELOAD. Reload
  // failures are counted, never fatal.
  std::string reload_host;
  int reload_port = 0;

  // Test-only crash injection, forwarded to every store Save.
  FaultHook fault_hook;

  // Publish a FRAMEINDEX alongside each generation (best-effort, exactly
  // like the solo pipeline's publish path).
  bool publish_frame_index = true;
};

struct CommitterStats {
  uint64_t publishes = 0;
  uint64_t last_generation = 0;
  int reloads_ok = 0;
  int reload_failures = 0;
  // Reloads skipped because another publish was already waiting: the later
  // commit reloads a strictly newer generation, so per-checkpoint reloads
  // under a busy farm coalesce into one per quiet moment.
  int reloads_coalesced = 0;
};

// The farm's single-committer publish path: every tenant checkpoint funnels
// through Publish(), which upserts that tenant's entry into the committer's
// cross-tenant picture, saves the whole catalog as exactly one new store
// generation, and (optionally) nudges a vdbserve to reload. Serializing
// here — on top of the store's own per-directory publish lock — means N
// concurrent checkpointing tenants commit contiguous generations, each
// containing every tenant's newest published state.
class Committer {
 public:
  explicit Committer(CommitterOptions options);

  // Adopts whatever the store already holds as the base layer (the solo
  // runs or earlier farm that wrote it). A missing store is the normal
  // first-run case: empty base. A corrupt store also starts empty here and
  // surfaces at the first Save, mirroring the solo pipeline.
  void Init();

  // Single-writer publish of one tenant's entry. Returns the receipt the
  // pipeline mirrors into its report.
  Result<stream::PublishReceipt> Publish(const CatalogEntry& entry);

  CommitterStats stats() const;

 private:
  CommitterOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> entries_;  // newest entry per tenant
  std::atomic<int> waiting_{0};  // publishers queued on mu_ right now
  CommitterStats stats_;
};

}  // namespace farm
}  // namespace vdb

#endif  // VDB_FARM_COMMITTER_H_
