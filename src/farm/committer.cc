#include "farm/committer.h"

#include <utility>

#include "index/frame_index.h"
#include "index/index_store.h"
#include "serve/client.h"
#include "store/catalog_store.h"

namespace vdb {
namespace farm {

Committer::Committer(CommitterOptions options)
    : options_(std::move(options)) {}

void Committer::Init() {
  std::lock_guard<std::mutex> lock(mu_);
  store::CatalogStore store(
      options_.dir, store::StoreOptions{options_.database, options_.fault_hook});
  Result<std::unique_ptr<VideoDatabase>> opened = store.Open();
  if (!opened.ok()) return;  // missing store: first publish creates it
  const VideoDatabase& db = **opened;
  for (int id = 0; id < db.video_count(); ++id) {
    Result<const CatalogEntry*> entry = db.GetEntry(id);
    if (!entry.ok()) continue;
    entries_[(*entry)->name] = **entry;
  }
}

Result<stream::PublishReceipt> Committer::Publish(const CatalogEntry& entry) {
  waiting_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  waiting_.fetch_sub(1, std::memory_order_relaxed);

  entries_[entry.name] = entry;

  // Rebuild the full cross-tenant catalog and save it as one generation.
  // Entries are keyed by name in a std::map, so the rebuilt database's
  // video order — and therefore the published bytes — is deterministic
  // regardless of which tenant's checkpoint triggered this commit.
  VideoDatabase db(options_.database);
  for (const auto& [name, e] : entries_) {
    (void)name;
    Result<int> restored = db.Restore(e);
    if (!restored.ok()) return restored.status();
  }

  store::CatalogStore store(
      options_.dir, store::StoreOptions{options_.database, options_.fault_hook});
  Result<store::SaveStats> saved = store.Save(db);
  if (!saved.ok()) return saved.status();

  ++stats_.publishes;
  stats_.last_generation = saved->generation;

  if (options_.publish_frame_index) {
    // Best-effort, same contract as the solo pipeline: readers rebuild in
    // memory when the FRAMEINDEX of a generation is missing.
    index::FrameIndex frame_index = index::FrameIndex::Build(db);
    Status index_saved = index::SaveFrameIndex(
        options_.dir, saved->generation, frame_index, /*fault_hook=*/nullptr);
    (void)index_saved;
  }

  stream::PublishReceipt receipt;
  receipt.generation = saved->generation;

  if (!options_.reload_host.empty() && options_.reload_port > 0) {
    if (waiting_.load(std::memory_order_relaxed) > 0) {
      // Another tenant's publish is already queued behind us; let its
      // commit carry the reload so the server loads the newer generation
      // once instead of churning through every intermediate one.
      ++stats_.reloads_coalesced;
    } else {
      Result<serve::Client> client =
          serve::Client::Connect(options_.reload_host, options_.reload_port);
      bool reloaded = client.ok();
      if (reloaded) reloaded = client->Reload().ok();
      if (reloaded) {
        ++stats_.reloads_ok;
        receipt.reloads_ok = 1;
      } else {
        ++stats_.reload_failures;
        receipt.reload_failures = 1;
      }
    }
  }
  return receipt;
}

CommitterStats Committer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace farm
}  // namespace vdb
