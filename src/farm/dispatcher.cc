#include "farm/dispatcher.h"

#include <chrono>

#include "core/kernels.h"

namespace vdb {
namespace farm {

// One tenant's scheduling state. `has_work` is a hint, not a guarantee: it
// is consumed when a worker picks the slot and re-armed by NotifyWork or by
// a step that made progress, so a stream with frames queued keeps getting
// picked while an idle one costs at most one failed poll per re-poll tick.
struct FairDispatcher::Slot {
  int tenant_index = 0;
  int weight = 1;
  int credits = 0;  // fair-share budget left in the current round
  stream::SignatureWorkSource* source = nullptr;
  bool has_work = false;
  bool finished = false;         // source reported kFinished or detached
  bool finish_reported = false;  // finished_callback already fired
  int in_use = 0;                // workers currently inside ProcessOne
  uint64_t processed = 0;
  std::unique_ptr<Handle> handle;
};

// The per-tenant facade handed to a pipeline: routes the pipeline's
// attach/detach/notify into the shared dispatcher's slot.
class FairDispatcher::Handle : public stream::SignatureDispatcher {
 public:
  Handle(FairDispatcher* owner, Slot* slot) : owner_(owner), slot_(slot) {}

  Status Attach(stream::SignatureWorkSource* source) override {
    return owner_->Attach(slot_, source);
  }
  void Detach(stream::SignatureWorkSource* source) override {
    owner_->Detach(slot_, source);
  }
  void NotifyWork() override { owner_->Notify(slot_); }

 private:
  FairDispatcher* owner_;
  Slot* slot_;
};

FairDispatcher::FairDispatcher() : FairDispatcher(Options()) {}

FairDispatcher::FairDispatcher(Options options) : options_(options) {}

FairDispatcher::~FairDispatcher() = default;

stream::SignatureDispatcher* FairDispatcher::AddTenant(int tenant_index,
                                                       int weight) {
  std::lock_guard<std::mutex> lock(mu_);
  auto slot = std::make_unique<Slot>();
  slot->tenant_index = tenant_index;
  slot->weight = weight < 1 ? 1 : weight;
  slot->credits = slot->weight;
  slot->handle = std::make_unique<Handle>(this, slot.get());
  slots_.push_back(std::move(slot));
  return slots_.back()->handle.get();
}

Status FairDispatcher::Attach(Slot* slot,
                              stream::SignatureWorkSource* source) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return Status::FailedPrecondition("dispatcher already closed");
    }
    slot->source = source;
    slot->finished = false;
    slot->has_work = true;  // poll at least once even before any notify
  }
  work_cv_.notify_all();
  return Status::Ok();
}

void FairDispatcher::Detach(Slot* slot,
                            stream::SignatureWorkSource* source) {
  bool report = false;
  int index = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (slot->source != source) return;
    // Block until no worker is inside ProcessOne: after Detach returns the
    // pipeline may destroy the source.
    detach_cv_.wait(lock, [slot] { return slot->in_use == 0; });
    slot->source = nullptr;
    slot->finished = true;
    // A stream can detach before any worker observed its kFinished (the
    // finalize tail ran ahead of the next poll) — report it here so the
    // fairness record never misses a finisher.
    if (!slot->finish_reported) {
      slot->finish_reported = true;
      report = true;
      index = slot->tenant_index;
    }
  }
  work_cv_.notify_all();  // AllDone may hold now
  if (report) ReportFinished(index);
}

void FairDispatcher::Notify(Slot* slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slot->source == nullptr || slot->finished) return;
    slot->has_work = true;
  }
  work_cv_.notify_one();
}

void FairDispatcher::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  work_cv_.notify_all();
}

FairDispatcher::Slot* FairDispatcher::PickLocked() {
  const size_t n = slots_.size();
  if (n == 0) return nullptr;
  // Two passes: first within the current round's credits, then refill and
  // rescan — so weights shape the long-run service ratio without ever
  // stalling when only over-budget tenants have work.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t k = 0; k < n; ++k) {
      Slot* s = slots_[(cursor_ + k) % n].get();
      if (s->source == nullptr || s->finished || !s->has_work) continue;
      if (s->credits <= 0) continue;
      --s->credits;
      s->has_work = false;  // consumed; progress or a notify re-arms it
      cursor_ = (cursor_ + k + 1) % n;
      return s;
    }
    bool any_ready = false;
    for (auto& s : slots_) {
      s->credits = s->weight;
      if (s->source != nullptr && !s->finished && s->has_work) {
        any_ready = true;
      }
    }
    if (!any_ready) return nullptr;
  }
  return nullptr;
}

bool FairDispatcher::AllDoneLocked() const {
  if (!closed_) return false;
  for (const auto& s : slots_) {
    if (s->source != nullptr) return false;
  }
  return true;
}

void FairDispatcher::RepollLocked() {
  // Liveness backstop: downstream backpressure (a full signature queue)
  // clears without any NotifyWork, so periodically every attached tenant
  // becomes pollable again.
  for (auto& s : slots_) {
    if (s->source != nullptr && !s->finished) s->has_work = true;
  }
}

void FairDispatcher::ReportFinished(int tenant_index) {
  if (finished_callback) finished_callback(tenant_index);
}

Status FairDispatcher::RunWorker() {
  PyramidWorkspace workspace;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Slot* pick = PickLocked();
    if (pick == nullptr) {
      if (AllDoneLocked()) return Status::Ok();
      work_cv_.wait_for(
          lock, std::chrono::microseconds(options_.idle_repoll_micros));
      RepollLocked();
      continue;
    }
    stream::SignatureWorkSource* source = pick->source;
    ++pick->in_use;
    lock.unlock();

    const stream::SignatureWorkSource::Step step =
        source->ProcessOne(&workspace);

    bool report = false;
    int index = 0;
    lock.lock();
    --pick->in_use;
    if (pick->in_use == 0) detach_cv_.notify_all();
    switch (step) {
      case stream::SignatureWorkSource::Step::kProcessed:
        ++pick->processed;
        pick->has_work = true;  // a stream that yielded a frame likely has more
        break;
      case stream::SignatureWorkSource::Step::kIdle:
        break;  // leave has_work as a racing notify may have set it
      case stream::SignatureWorkSource::Step::kFinished:
        if (!pick->finished) {
          pick->finished = true;
          if (!pick->finish_reported) {
            pick->finish_reported = true;
            report = true;
            index = pick->tenant_index;
          }
        }
        work_cv_.notify_all();
        break;
    }
    if (report) {
      lock.unlock();
      ReportFinished(index);
      lock.lock();
    }
  }
}

std::vector<uint64_t> FairDispatcher::ProcessedCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t max_index = 0;
  for (const auto& s : slots_) {
    if (static_cast<size_t>(s->tenant_index) + 1 > max_index) {
      max_index = static_cast<size_t>(s->tenant_index) + 1;
    }
  }
  std::vector<uint64_t> counts(max_index, 0);
  for (const auto& s : slots_) {
    counts[s->tenant_index] += s->processed;
  }
  return counts;
}

bool FairDispatcher::QueueStats(int tenant_index,
                                stream::TenantQueueStats* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : slots_) {
    if (s->tenant_index != tenant_index) continue;
    if (s->source == nullptr) return false;
    *out = s->source->QueueStats();
    return true;
  }
  return false;
}

}  // namespace farm
}  // namespace vdb
