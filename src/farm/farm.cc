#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <utility>

#include "util/parallel.h"
#include "util/string_util.h"

namespace vdb {
namespace farm {

const char* StreamStateName(StreamState state) {
  switch (state) {
    case StreamState::kPending:
      return "pending";
    case StreamState::kRunning:
      return "running";
    case StreamState::kFinished:
      return "finished";
    case StreamState::kShed:
      return "shed";
    case StreamState::kCancelled:
      return "cancelled";
    case StreamState::kFailed:
      return "failed";
  }
  return "unknown";
}

// One admitted tenant: its pipeline, the counters other threads read while
// it runs, and the outcome its runner task leaves behind.
struct StreamFarm::Tenant {
  int index = 0;
  std::string name;
  int weight = 1;
  double target_fps = 0.0;
  int frames_total = 0;
  std::unique_ptr<stream::FrameSource> source;
  std::unique_ptr<stream::Pipeline> pipeline;

  std::atomic<long> frames_done{0};
  std::atomic<int> state{static_cast<int>(StreamState::kPending)};
  std::atomic<bool> shed{false};

  // Lag as of the monitor's last tick; guarded by the farm's mu_.
  double lag_seconds = 0.0;
  bool lagging = false;

  // Written by RunTenant before it retires, read after the pool drains.
  StreamOutcome outcome;
};

StreamFarm::StreamFarm(FarmOptions options) : options_(std::move(options)) {}

StreamFarm::~StreamFarm() = default;

Result<FarmReport> StreamFarm::Run(std::vector<StreamSpec> specs) {
  return Execute(std::move(specs), /*resume=*/false);
}

Result<FarmReport> StreamFarm::Resume(std::vector<StreamSpec> specs) {
  return Execute(std::move(specs), /*resume=*/true);
}

Status StreamFarm::ValidateSpecs(const std::vector<StreamSpec>& specs,
                                 bool resume) {
  if (specs.empty()) {
    return Status::InvalidArgument("no streams offered");
  }
  if (options_.max_streams > 0 &&
      static_cast<int>(specs.size()) > options_.max_streams) {
    // Admission control: all-or-nothing. Nothing was started, so the
    // caller can retry with fewer streams or against a bigger farm.
    return Status::Unavailable(
        StrFormat("admission refused: %d streams offered, max_streams=%d",
                  static_cast<int>(specs.size()), options_.max_streams));
  }
  if (options_.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if ((options_.checkpoint_every_shots > 0 ||
       options_.checkpoint_every_media_seconds > 0) &&
      options_.publish_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint cadence set without publish_dir");
  }
  if (resume && options_.publish_dir.empty()) {
    return Status::InvalidArgument("Resume requires publish_dir");
  }
  std::set<std::string> names;
  for (const StreamSpec& spec : specs) {
    if (spec.source == nullptr) {
      return Status::InvalidArgument("stream spec with null source");
    }
    if (spec.weight < 1) {
      return Status::InvalidArgument(
          StrFormat("stream '%s': weight must be >= 1",
                    spec.source->name().c_str()));
    }
    if (!spec.name.empty() && spec.name != spec.source->name()) {
      // The published entry is keyed by the source's name; a divergent
      // label would silently publish under a different key than reported.
      return Status::InvalidArgument(
          StrFormat("stream name '%s' does not match its source '%s'; "
                    "rename the video before wrapping it",
                    spec.name.c_str(), spec.source->name().c_str()));
    }
    if (!names.insert(spec.source->name()).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate stream name '%s': each tenant owns one "
                    "catalog entry",
                    spec.source->name().c_str()));
    }
  }
  return Status::Ok();
}

Result<FarmReport> StreamFarm::Execute(std::vector<StreamSpec> specs,
                                       bool resume) {
  VDB_RETURN_IF_ERROR(ValidateSpecs(specs, resume));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("farm is already running");
    }
    running_ = true;
    tenants_.clear();
    completion_snapshots_.clear();
  }
  cancel_requested_.store(false);

  const int n = static_cast<int>(specs.size());
  const int workers = options_.signature_workers > 0
                          ? options_.signature_workers
                          : HardwareThreads();

  dispatcher_ = std::make_unique<FairDispatcher>();
  dispatcher_->finished_callback = [this](int) { RecordCompletionSnapshot(); };

  committer_.reset();
  if (!options_.publish_dir.empty()) {
    CommitterOptions copts;
    copts.database = options_.database;
    copts.dir = options_.publish_dir;
    copts.reload_host = options_.reload_host;
    copts.reload_port = options_.reload_port;
    copts.fault_hook = options_.fault_hook;
    committer_ = std::make_unique<Committer>(copts);
    committer_->Init();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < n; ++i) {
      auto tenant = std::make_unique<Tenant>();
      tenant->index = i;
      tenant->source = std::move(specs[i].source);
      tenant->name = tenant->source->name();
      tenant->weight = specs[i].weight;
      tenant->target_fps = specs[i].target_fps;
      tenant->frames_total = tenant->source->frame_count();
      tenant->outcome.name = tenant->name;

      stream::PipelineOptions popts;
      popts.database = options_.database;
      popts.queue_capacity = options_.queue_capacity;
      popts.checkpoint_every_shots = options_.checkpoint_every_shots;
      popts.checkpoint_every_media_seconds =
          options_.checkpoint_every_media_seconds;
      popts.publish_dir = options_.publish_dir;
      popts.fault_hook = options_.fault_hook;
      popts.dispatcher = dispatcher_->AddTenant(i, tenant->weight);
      if (committer_ != nullptr) {
        Committer* committer = committer_.get();
        popts.external_publish = [committer](const CatalogEntry& entry) {
          return committer->Publish(entry);
        };
      }
      Tenant* raw = tenant.get();
      popts.progress_callback = [raw](int frames_done) {
        raw->frames_done.store(frames_done, std::memory_order_relaxed);
      };
      if (options_.checkpoint_callback) {
        auto callback = options_.checkpoint_callback;
        const int index = i;
        popts.checkpoint_callback = [callback, index](uint64_t generation,
                                                      int /*shots*/) {
          callback(index, generation);
        };
      }
      tenant->pipeline = std::make_unique<stream::Pipeline>(popts);
      tenants_.push_back(std::move(tenant));
    }
  }

  active_.store(n);
  clock_.Reset();

  // One thread per tenant runner plus the shared signature workers; every
  // task blocks for the farm's whole lifetime, so the pool is sized to
  // hold all of them at once (n + workers >= 2 keeps it out of inline
  // mode).
  ThreadPool pool(n + workers);
  for (int w = 0; w < workers; ++w) {
    pool.Submit([this] { return dispatcher_->RunWorker(); });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& tenant : tenants_) {
      Tenant* raw = tenant.get();
      if (!pool.Submit(
              [this, raw, resume] { return RunTenant(raw, resume); })) {
        active_.fetch_sub(1);
      }
    }
  }

  MonitorLoop();
  dispatcher_->Close();
  Status pool_status = pool.Wait();

  FarmReport report;
  report.wall_seconds = clock_.ElapsedSeconds();
  if (committer_ != nullptr) {
    CommitterStats stats = committer_->stats();
    report.publishes = stats.publishes;
    report.store_generation = stats.last_generation;
    report.reloads_ok = stats.reloads_ok;
    report.reload_failures = stats.reload_failures;
    report.reloads_coalesced = stats.reloads_coalesced;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.final_metrics = MetricsLocked();
    report.completion_snapshots = completion_snapshots_;
    for (auto& tenant : tenants_) {
      report.streams.push_back(std::move(tenant->outcome));
    }
    running_ = false;
  }
  if (!pool_status.ok()) return pool_status;
  return report;
}

Status StreamFarm::RunTenant(Tenant* tenant, bool resume) {
  tenant->state.store(static_cast<int>(StreamState::kRunning),
                      std::memory_order_relaxed);
  // A farm-wide Cancel that raced ahead of this tenant's launch still
  // wins (the pipeline honours a pre-run cancel).
  if (cancel_requested_.load()) tenant->pipeline->Cancel();

  Result<stream::PipelineResult> result =
      resume ? tenant->pipeline->Resume(tenant->source.get())
             : tenant->pipeline->Run(tenant->source.get());
  if (resume && !result.ok() &&
      result.status().code() == StatusCode::kNotFound) {
    // No checkpoint of this tenant yet (fresh stream, or it never got far
    // enough to publish): admit it as a fresh run.
    result = tenant->pipeline->Run(tenant->source.get());
  }

  StreamState final_state;
  if (result.ok()) {
    tenant->outcome.entry = std::move(result->entry);
    tenant->outcome.report = result->report;
    if (result->report.cancelled) {
      final_state = tenant->shed.load() ? StreamState::kShed
                                        : StreamState::kCancelled;
    } else {
      final_state = StreamState::kFinished;
    }
  } else {
    tenant->outcome.status = result.status();
    final_state = StreamState::kFailed;
  }
  tenant->outcome.state = final_state;
  tenant->state.store(static_cast<int>(final_state),
                      std::memory_order_release);
  active_.fetch_sub(1);
  // A tenant failure is the tenant's outcome, not the farm's: returning Ok
  // keeps the pool's first-error slot for infrastructure failures only.
  return Status::Ok();
}

void StreamFarm::MonitorLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.monitor_interval_seconds > 0 ? options_.monitor_interval_seconds
                                            : 0.005);
  while (active_.load() > 0) {
    std::this_thread::sleep_for(interval);
    UpdateLagAndShed();
  }
}

void StreamFarm::UpdateLagAndShed() {
  const double elapsed = clock_.ElapsedSeconds();
  Tenant* victim = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& tenant : tenants_) {
      if (tenant->state.load(std::memory_order_relaxed) !=
          static_cast<int>(StreamState::kRunning)) {
        tenant->lagging = false;
        continue;
      }
      if (tenant->target_fps <= 0) continue;
      // Real-time expectation: by now, elapsed * fps frames have arrived
      // (capped at the stream's length); everything not yet finalized is
      // lag.
      const double expected = std::min<double>(
          elapsed * tenant->target_fps, tenant->frames_total);
      const long done = tenant->frames_done.load(std::memory_order_relaxed);
      const double lag_frames = expected - static_cast<double>(done);
      tenant->lag_seconds =
          lag_frames > 0 ? lag_frames / tenant->target_fps : 0.0;
      tenant->lagging = tenant->lag_seconds > 0;
      if (options_.shed_after_seconds > 0 &&
          tenant->lag_seconds > options_.shed_after_seconds &&
          !tenant->shed.load(std::memory_order_relaxed)) {
        // Shed lowest weight first; among equals, the one furthest behind.
        if (victim == nullptr || tenant->weight < victim->weight ||
            (tenant->weight == victim->weight &&
             tenant->lag_seconds > victim->lag_seconds)) {
          victim = tenant.get();
        }
      }
    }
    if (victim != nullptr) victim->shed.store(true);
  }
  if (victim != nullptr) {
    // One shed per tick: freeing a stream's share of the workers may be
    // enough for the rest to catch up. The cancelled pipeline abandons its
    // open shot; its last published checkpoint stays intact, which is what
    // Resume() later picks up.
    victim->pipeline->Cancel();
  }
}

void StreamFarm::RecordCompletionSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<long> snapshot;
  snapshot.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    snapshot.push_back(tenant->frames_done.load(std::memory_order_relaxed));
  }
  completion_snapshots_.push_back(std::move(snapshot));
}

void StreamFarm::Cancel() {
  cancel_requested_.store(true);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& tenant : tenants_) {
    if (tenant->pipeline != nullptr) tenant->pipeline->Cancel();
  }
}

FarmMetrics StreamFarm::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MetricsLocked();
}

FarmMetrics StreamFarm::MetricsLocked() const {
  FarmMetrics metrics;
  metrics.elapsed_seconds = clock_.ElapsedSeconds();
  std::vector<uint64_t> processed;
  if (dispatcher_ != nullptr) processed = dispatcher_->ProcessedCounts();
  for (const auto& tenant : tenants_) {
    StreamMetrics sm;
    sm.name = tenant->name;
    sm.state = static_cast<StreamState>(
        tenant->state.load(std::memory_order_acquire));
    sm.weight = tenant->weight;
    sm.target_fps = tenant->target_fps;
    sm.frames_total = tenant->frames_total;
    sm.frames_done = tenant->frames_done.load(std::memory_order_relaxed);
    if (static_cast<size_t>(tenant->index) < processed.size()) {
      sm.signature_steps = processed[tenant->index];
    }
    sm.lag_seconds = tenant->lag_seconds;
    sm.lagging = tenant->lagging;
    if (dispatcher_ != nullptr) {
      dispatcher_->QueueStats(tenant->index, &sm.queues);
    }
    switch (sm.state) {
      case StreamState::kPending:
        break;
      case StreamState::kRunning:
        ++metrics.running;
        break;
      case StreamState::kFinished:
        ++metrics.finished;
        break;
      case StreamState::kShed:
        ++metrics.shed;
        break;
      case StreamState::kCancelled:
        ++metrics.cancelled;
        break;
      case StreamState::kFailed:
        ++metrics.failed;
        break;
    }
    metrics.streams.push_back(std::move(sm));
  }
  if (committer_ != nullptr) {
    CommitterStats stats = committer_->stats();
    metrics.publishes = stats.publishes;
    metrics.store_generation = stats.last_generation;
    metrics.reloads_ok = stats.reloads_ok;
    metrics.reload_failures = stats.reload_failures;
    metrics.reloads_coalesced = stats.reloads_coalesced;
  }
  return metrics;
}

}  // namespace farm
}  // namespace vdb
